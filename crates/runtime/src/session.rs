//! `Session` — the one configured entry point to the runtime.
//!
//! The paper's pipeline (analyze → cascade predicates → parallel
//! execute → simulate) used to be spread across triplicated free
//! functions (`run_loop`/`run_loop_with`/`run_loop_with_opts`, same
//! for CIV, LRPD and costs) whose configuration leaked in through
//! process-global environment variables read mid-call. A [`Session`]
//! replaces that sprawl: a builder owns **all** configuration
//! ([`SessionConfig`]: execution backend, bytecode opt level,
//! predicate engine, pool width, predicate fork threshold, spawn cost,
//! analysis options) plus the shared mutable state — the per-machine
//! compile caches and the [`lip_pred::PredEngine`] with its verdict
//! memo — and exposes the pipeline as methods. (The free-function
//! shims deprecated in 0.2 are gone as of 0.3.)
//!
//! Two sessions are fully isolated: each owns its own cache registry,
//! so two callers in one process can run different `(Backend,
//! PredBackend)` pairs concurrently and still produce bit-identical
//! tables (verdicts and charged work units never depend on the
//! configuration, only wall-clock does).
//!
//! Environment variables remain supported, but they are read in
//! exactly one place — [`SessionConfig::from_env`] — with *strict*
//! parsing: `LIP_BACKEND=bytecoed` is a [`ConfigError`], never a
//! silent fallback to the default backend.
//!
//! ```
//! use lip_runtime::{Backend, PredBackend, Session};
//!
//! let session = Session::builder()
//!     .backend(Backend::Bytecode)
//!     .pred(PredBackend::Compiled)
//!     .nthreads(8)
//!     .par_min(1024)
//!     .spawn_cost(4_000)
//!     .build();
//! assert!(session.config().backend.is_bytecode());
//! ```

use std::sync::{Arc, Mutex, Weak};

use lip_analysis::{analyze_loop, AnalysisConfig, LoopAnalysis};
use lip_ir::{Machine, Program, RunError, Stmt, Store, Subroutine};
use lip_obs::{LoopDecision, MetricsSnapshot, Obs, ObsLevel, TraceEvent};
use lip_symbolic::Sym;

use crate::backend::{Backend, ExecEnv, OptLevel, PredBackend};
use crate::cache::MachineCache;
use crate::exec::RunStats;
use crate::lrpd::LrpdOutcome;
use crate::sim::{SimResult, SimSpec};

/// All configuration a [`Session`] owns. Construct via
/// [`Session::builder`], [`SessionConfig::default`] or
/// [`SessionConfig::from_env`].
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Which engine runs loop iterations (`LIP_BACKEND`).
    pub backend: Backend,
    /// Whether compiled bytecode gets the superinstruction peephole
    /// pass (`LIP_OPT`; default on — `OptLevel::None` keeps the raw
    /// compiler stream reachable for differential testing).
    pub opt_level: OptLevel,
    /// Which engine evaluates runtime predicates (`LIP_PRED`).
    pub pred: PredBackend,
    /// Fork-join pool width for parallel execution and O(N) predicate
    /// evaluation (defaults to the host's available parallelism).
    pub nthreads: usize,
    /// Trip-count threshold past which quantified O(N) predicate
    /// stages fork across the pool (`LIP_PRED_PAR_MIN`; must be ≥ 1).
    pub par_min: i64,
    /// Work units charged per parallel-region spawn by the cost-model
    /// simulator ([`crate::Session::simulate`]).
    pub spawn_cost: u64,
    /// Loop-fission rescue pass (`LIP_FISSION`; default on). Governs
    /// both sides of the seam: [`Session::analyze`] plans distribution
    /// for cascade-fail loops, and [`Session::run_loop`] honors those
    /// plans. Off = classic whole-loop behavior (the ablation leg).
    pub fission: bool,
    /// Observability level (`LIP_OBS`; default off). `metrics` turns
    /// on the counter/histogram registry (cheap aggregates only);
    /// `trace` additionally records timestamped span/event streams,
    /// per-loop decision reports ([`Session::explain`]) and the VM's
    /// per-op dispatch counters. Off is free: every instrumentation
    /// site guards on one branch and execution semantics never depend
    /// on the level.
    pub obs: ObsLevel,
    /// Static-analysis options ([`lip_analysis::AnalysisConfig`],
    /// folded in so `Session::analyze` needs no extra argument; its
    /// own `fission` flag is overridden by the session-level knob
    /// above).
    pub analysis: AnalysisConfig,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            backend: Backend::default(),
            opt_level: OptLevel::default(),
            pred: PredBackend::default(),
            nthreads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            par_min: lip_pred::engine::DEFAULT_PAR_MIN,
            spawn_cost: 4_000,
            fission: true,
            obs: ObsLevel::Off,
            analysis: AnalysisConfig::default(),
        }
    }
}

/// A rejected configuration value (strict parsing: unknown values are
/// errors, not silent fallbacks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The variable (or builder field) that failed to parse.
    pub var: String,
    /// Why the value was rejected.
    pub reason: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.var, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// The environment variables [`SessionConfig::from_env`] honors.
const ENV_VARS: [&str; 6] = [
    "LIP_BACKEND",
    "LIP_OPT",
    "LIP_PRED",
    "LIP_PRED_PAR_MIN",
    "LIP_FISSION",
    "LIP_OBS",
];

impl SessionConfig {
    /// Reads the `LIP_*` environment variables — the **only** place in
    /// the workspace that does. Unset variables keep their defaults;
    /// set-but-invalid values are a [`ConfigError`] (e.g.
    /// `LIP_BACKEND=bytecoed`, `LIP_PRED_PAR_MIN=0`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on the first variable whose value does
    /// not parse strictly.
    pub fn from_env() -> Result<SessionConfig, ConfigError> {
        let mut cfg = SessionConfig::default();
        for var in ENV_VARS {
            if let Ok(value) = std::env::var(var) {
                cfg.apply(var, &value)?;
            }
        }
        Ok(cfg)
    }

    /// Applies one `variable = value` pair under the same strict rules
    /// as [`SessionConfig::from_env`] (exposed so the per-variable
    /// parsers are unit-testable without touching the process
    /// environment).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an unknown variable or a value that
    /// does not parse.
    pub fn apply(&mut self, var: &str, value: &str) -> Result<(), ConfigError> {
        let err = |reason: String| ConfigError {
            var: var.to_owned(),
            reason,
        };
        match var {
            "LIP_BACKEND" => self.backend = value.parse().map_err(err)?,
            "LIP_OPT" => self.opt_level = value.parse().map_err(err)?,
            "LIP_PRED" => self.pred = value.parse().map_err(err)?,
            "LIP_PRED_PAR_MIN" => self.par_min = parse_par_min(value).map_err(err)?,
            "LIP_FISSION" => self.fission = parse_switch(value).map_err(err)?,
            "LIP_OBS" => self.obs = value.parse().map_err(err)?,
            other => {
                return Err(ConfigError {
                    var: other.to_owned(),
                    reason: format!(
                        "unknown configuration variable (expected one of {ENV_VARS:?})"
                    ),
                })
            }
        }
        Ok(())
    }

    /// A stable rendering of every field that changes which warm
    /// [`Session`] can serve a request — the shard key a session pool
    /// (`lip_serve`) buckets by. Two configs with equal shard keys are
    /// interchangeable: same backend, opt level, predicate engine,
    /// pool width, fork threshold, spawn cost, fission setting and
    /// observability level. The analysis options are not rendered: the
    /// serve layer constructs sessions only from the wire-configurable
    /// fields, which this key covers completely.
    pub fn shard_key(&self) -> String {
        format!(
            "backend={} opt={} pred={} nthreads={} par_min={} spawn_cost={} fission={} obs={}",
            self.backend,
            self.opt_level,
            self.pred,
            self.nthreads,
            self.par_min,
            self.spawn_cost,
            if self.fission { "on" } else { "off" },
            self.obs,
        )
    }
}

fn parse_switch(value: &str) -> Result<bool, String> {
    if value.eq_ignore_ascii_case("on") || value.eq_ignore_ascii_case("true") || value == "1" {
        Ok(true)
    } else if value.eq_ignore_ascii_case("off")
        || value.eq_ignore_ascii_case("false")
        || value == "0"
    {
        Ok(false)
    } else {
        Err(format!(
            "unknown switch value `{value}` (expected on/off, true/false or 1/0)"
        ))
    }
}

fn parse_par_min(value: &str) -> Result<i64, String> {
    match value.parse::<i64>() {
        Ok(v) if v >= 1 => Ok(v),
        Ok(v) => Err(format!(
            "threshold must be at least 1 iteration, got {v} (use 1 to always fork)"
        )),
        Err(_) => Err(format!("not an integer: `{value}`")),
    }
}

/// Builder for [`Session`]; start from [`Session::builder`].
#[derive(Clone, Debug, Default)]
pub struct SessionBuilder {
    cfg: SessionConfig,
    recorder: Option<std::sync::Arc<dyn lip_obs::Recorder>>,
}

impl SessionBuilder {
    /// The engine that runs loop iterations.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> SessionBuilder {
        self.cfg.backend = backend;
        self
    }

    /// Whether compiled bytecode gets the superinstruction peephole
    /// pass (default [`OptLevel::Fuse`]).
    #[must_use]
    pub fn opt_level(mut self, opt_level: OptLevel) -> SessionBuilder {
        self.cfg.opt_level = opt_level;
        self
    }

    /// The engine that evaluates runtime predicates.
    #[must_use]
    pub fn pred(mut self, pred: PredBackend) -> SessionBuilder {
        self.cfg.pred = pred;
        self
    }

    /// Fork-join pool width (clamped to at least 1).
    #[must_use]
    pub fn nthreads(mut self, nthreads: usize) -> SessionBuilder {
        self.cfg.nthreads = nthreads.max(1);
        self
    }

    /// Trip-count threshold for parallel O(N) predicate evaluation
    /// (clamped to at least 1).
    #[must_use]
    pub fn par_min(mut self, par_min: i64) -> SessionBuilder {
        self.cfg.par_min = par_min.max(1);
        self
    }

    /// Simulator work units charged per parallel-region spawn.
    #[must_use]
    pub fn spawn_cost(mut self, spawn_cost: u64) -> SessionBuilder {
        self.cfg.spawn_cost = spawn_cost;
        self
    }

    /// Loop-fission rescue pass on/off (default on). Governs both
    /// [`Session::analyze`] (whether distribution plans are built for
    /// cascade-fail loops) and [`Session::run_loop`] (whether carried
    /// plans are honored). Environment equivalent: `LIP_FISSION`.
    #[must_use]
    pub fn fission(mut self, fission: bool) -> SessionBuilder {
        self.cfg.fission = fission;
        self
    }

    /// Observability level (default [`ObsLevel::Off`]). `metrics`
    /// records counters, latency histograms and per-loop decisions
    /// ([`Session::metrics`], [`Session::explain`]); `trace` adds
    /// timestamped span/event streams ([`Session::trace_events`]).
    /// Environment equivalent: `LIP_OBS`.
    #[must_use]
    pub fn observer(mut self, level: ObsLevel) -> SessionBuilder {
        self.cfg.obs = level;
        self
    }

    /// Like [`SessionBuilder::observer`], but sinks spans and events
    /// into a custom [`lip_obs::Recorder`] instead of the default
    /// in-memory trace buffer. The metrics registry and decision store
    /// are unaffected. A [`lip_obs::NoopRecorder`] here exercises every
    /// instrumentation call site while discarding the stream — the
    /// configuration the no-op overhead benchmark measures.
    #[must_use]
    pub fn observer_recorder(
        mut self,
        level: ObsLevel,
        recorder: std::sync::Arc<dyn lip_obs::Recorder>,
    ) -> SessionBuilder {
        self.cfg.obs = level;
        self.recorder = Some(recorder);
        self
    }

    /// Static-analysis options used by [`Session::analyze`].
    #[must_use]
    pub fn analysis(mut self, analysis: AnalysisConfig) -> SessionBuilder {
        self.cfg.analysis = analysis;
        self
    }

    /// Replaces the whole configuration (e.g. one obtained from
    /// [`SessionConfig::from_env`]) before further tweaks.
    #[must_use]
    pub fn config(mut self, cfg: SessionConfig) -> SessionBuilder {
        self.cfg = cfg;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Session {
        let obs = match self.recorder {
            Some(r) => Obs::with_recorder(self.cfg.obs, r),
            None => Obs::with_level(self.cfg.obs),
        };
        Session {
            cfg: self.cfg,
            obs,
            caches: Mutex::new(Vec::new()),
        }
    }
}

/// A configured runtime session: the single entry point for analyzing,
/// executing and simulating loops. See the [module docs](self) for the
/// design rationale.
///
/// The session owns the per-machine compile caches (bytecode programs,
/// lowered blocks, compiled predicates, verdict memos) and the
/// configuration of the fork-join pool, so repeated invocations — and
/// [`Session::run_many`] batches — skip straight to execution.
pub struct Session {
    cfg: SessionConfig,
    /// The session-wide observability handle: metrics registry, trace
    /// recorder and per-loop decision store, shared (cloned) into every
    /// cache and execution environment this session creates.
    obs: Obs,
    /// Per-program caches, keyed by program-handle identity; weak so
    /// caches die with their programs.
    caches: Mutex<Vec<(Weak<Program>, Arc<MachineCache>)>>,
}

impl Default for Session {
    fn default() -> Session {
        Session::builder().build()
    }
}

impl Session {
    /// Starts a builder with the default configuration (tree-walk
    /// execution, tree-walk predicates, host parallelism).
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// A session configured from the `LIP_*` environment variables
    /// (via [`SessionConfig::from_env`] — strict parsing).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a set variable does not parse.
    pub fn from_env() -> Result<Session, ConfigError> {
        Ok(Session::builder()
            .config(SessionConfig::from_env()?)
            .build())
    }

    /// This session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The compilation/predicate cache for `machine`'s program within
    /// this session, created on first use. Machines cloned from one
    /// another (tracer-instrumented copies) share one cache; distinct
    /// programs — and distinct sessions — never collide.
    pub fn cache(&self, machine: &Machine) -> Arc<MachineCache> {
        let handle = machine.program_handle();
        let mut reg = self.caches.lock().expect("session cache lock");
        reg.retain(|(w, _)| w.strong_count() > 0);
        for (w, cache) in reg.iter() {
            if let Some(p) = w.upgrade() {
                if Arc::ptr_eq(&p, &handle) {
                    return cache.clone();
                }
            }
        }
        let cache = Arc::new(MachineCache::new(
            self.cfg.par_min,
            self.cfg.opt_level,
            self.cfg.fission,
            self.obs.clone(),
        ));
        reg.push((Arc::downgrade(&handle), cache.clone()));
        cache
    }

    /// The execution environment threaded through the internal drivers
    /// (cache + seams), with an explicit pool width.
    pub(crate) fn exec_env<'a>(&'a self, cache: &'a MachineCache, nthreads: usize) -> ExecEnv<'a> {
        ExecEnv {
            cache,
            backend: self.cfg.backend,
            pred: self.cfg.pred,
            nthreads: nthreads.max(1),
            obs: &self.obs,
        }
    }

    /// The session's observability handle (counters, spans, recorded
    /// decisions). Always present; a no-op unless the session was
    /// built with [`SessionBuilder::observer`] or `LIP_OBS`.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// A snapshot of every counter and latency histogram the session
    /// has accumulated so far (empty when observability is off).
    /// Serializable via [`MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// The trace event stream recorded so far (non-empty only at
    /// [`ObsLevel::Trace`]).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.obs.trace_events()
    }

    /// The recorded span/event stream as a Chrome Trace Event JSON
    /// document — load it at `chrome://tracing` or
    /// <https://ui.perfetto.dev>. One lane per thread: pool workers on
    /// stable `worker <k>` lanes, so a parallel kernel renders as a
    /// multi-lane timeline with per-chunk spans. Empty (but valid)
    /// unless the session runs at [`ObsLevel::Trace`].
    pub fn trace_chrome_json(&self) -> String {
        lip_obs::trace_chrome_json(&self.obs.trace_events())
    }

    /// Folds the recorded span stream into a profile: self/total time
    /// per span name (hottest first) plus a call-path tree, rendered
    /// via [`lip_obs::ProfileReport::render_text`] or `to_json`. Empty
    /// unless the session runs at [`ObsLevel::Trace`].
    pub fn profile(&self) -> lip_obs::ProfileReport {
        lip_obs::ProfileReport::from_events(&self.obs.trace_events())
    }

    /// The recorded decision for the loop labelled (or kernel named)
    /// `label`, if [`Session::run_loop`] analyzed-and-ran it at
    /// [`ObsLevel::Trace`] (decision records are a trace-level
    /// instrument — they allocate per loop run).
    pub fn explain_decision(&self, label: &str) -> Option<LoopDecision> {
        self.obs.decision(label)
    }

    /// A human-readable per-loop decision report: classification, each
    /// evaluated cascade stage with its verdict and charged units, the
    /// exact-test outcome, the fission plan (fragments and rescued
    /// work fraction) and the executor that finally ran the loop.
    /// `None` when no loop under that label (or kernel name) ran at
    /// [`ObsLevel::Trace`].
    pub fn explain(&self, label: &str) -> Option<String> {
        self.obs.decision(label).map(|d| d.render_text())
    }

    /// Analyzes the loop labelled `label` in subroutine `sub_name`
    /// under this session's [`AnalysisConfig`] (hybrid classification,
    /// cascade construction). Returns `None` when the loop cannot be
    /// found.
    pub fn analyze(&self, prog: &Program, sub_name: Sym, label: &str) -> Option<LoopAnalysis> {
        let mut cfg = self.cfg.analysis.clone();
        cfg.fission = self.cfg.fission;
        cfg.obs = self.obs.clone();
        analyze_loop(prog, sub_name, label, &cfg)
    }

    /// Runs the analyzed loop against `frame`: CIV traces, predicate
    /// cascade, then parallel / speculative / sequential execution —
    /// all under this session's configuration (paper §5).
    ///
    /// # Errors
    ///
    /// Propagates interpreter/VM failures.
    pub fn run_loop(
        &self,
        machine: &Machine,
        sub: &Subroutine,
        target: &Stmt,
        analysis: &LoopAnalysis,
        frame: &mut Store,
    ) -> Result<RunStats, RunError> {
        let cache = self.cache(machine);
        crate::exec::run_loop_impl(
            &self.exec_env(&cache, self.cfg.nthreads),
            machine,
            sub,
            target,
            analysis,
            frame,
        )
    }

    /// Runs a batch of loops through one session, reusing compiled
    /// programs, lowered blocks and predicate verdict memos across
    /// jobs (the warm-session path `bench_vm` tracks as
    /// `session_reuse`). Returns one [`RunStats`] per job, in order;
    /// the first error aborts the rest of the batch.
    ///
    /// # Errors
    ///
    /// Propagates the first interpreter/VM failure.
    pub fn run_many<'a>(
        &self,
        jobs: impl IntoIterator<Item = LoopJob<'a>>,
    ) -> Result<Vec<RunStats>, RunError> {
        jobs.into_iter()
            .map(|job| self.run_loop(job.machine, job.sub, job.target, job.analysis, job.frame))
            .collect()
    }

    /// Materializes CIV traces by running the loop slice (CIV-COMP,
    /// paper §3.3) on this session's backend. Returns the slice's
    /// work-unit cost; traces are bound into `frame` under the trace
    /// array names, and `niters_sym` (for while loops) receives the
    /// trip count.
    ///
    /// # Errors
    ///
    /// Propagates interpreter/VM failures from the slice execution.
    pub fn civ_traces(
        &self,
        machine: &Machine,
        sub: &Subroutine,
        target: &Stmt,
        civs: &[(Sym, Sym)],
        frame: &mut Store,
        niters_sym: Option<Sym>,
    ) -> Result<u64, RunError> {
        let cache = self.cache(machine);
        crate::civ::compute_civ_traces_impl(
            &self.exec_env(&cache, self.cfg.nthreads),
            machine,
            sub,
            target,
            civs,
            frame,
            niters_sym,
        )
    }

    /// Speculatively executes the DO loop in parallel under LRPD
    /// shadow monitoring, restoring and re-running sequentially on
    /// conflict. Returns the outcome and accumulated work units.
    ///
    /// # Errors
    ///
    /// Propagates interpreter/VM errors from either run.
    pub fn lrpd_execute(
        &self,
        machine: &Machine,
        sub: &Subroutine,
        target: &Stmt,
        frame: &Store,
        arrays: &[Sym],
    ) -> Result<(LrpdOutcome, u64), RunError> {
        let cache = self.cache(machine);
        crate::lrpd::lrpd_execute_impl(
            &self.exec_env(&cache, self.cfg.nthreads),
            machine,
            sub,
            target,
            frame,
            arrays,
        )
    }

    /// Executes the loop once sequentially (mutating `frame`) on this
    /// session's backend and returns the per-iteration work-unit costs
    /// — the raw material for makespans at any processor count.
    ///
    /// # Errors
    ///
    /// Propagates interpreter/VM failures.
    pub fn per_iteration_costs(
        &self,
        machine: &Machine,
        sub: &Subroutine,
        target: &Stmt,
        frame: &mut Store,
    ) -> Result<Vec<u64>, RunError> {
        let cache = self.cache(machine);
        crate::sim::per_iteration_costs_impl(
            &self.exec_env(&cache, self.cfg.nthreads),
            machine,
            sub,
            target,
            frame,
        )
    }

    /// Executes the loop once sequentially (mutating `frame`, so
    /// program state stays correct for whatever follows) and derives
    /// the simulated parallel timing on `spec.procs` virtual
    /// processors, charging this session's `spawn_cost` per
    /// parallel-region spawn.
    ///
    /// # Errors
    ///
    /// Propagates interpreter/VM failures.
    pub fn simulate(
        &self,
        machine: &Machine,
        sub: &Subroutine,
        target: &Stmt,
        frame: &mut Store,
        spec: SimSpec,
    ) -> Result<SimResult, RunError> {
        let per_iter = self.per_iteration_costs(machine, sub, target, frame)?;
        let seq_units: u64 = per_iter.iter().sum();
        let spawn = self.cfg.spawn_cost;
        let test_units = if spec.parallel_test {
            crate::sim::charged_test_units(spec.test_seq_units, spec.procs, spawn)
        } else {
            spec.test_seq_units
        };
        let par_units = if spec.run_parallel && !per_iter.is_empty() {
            crate::sim::makespan(&per_iter, spec.procs) + spawn
        } else {
            seq_units
        };
        Ok(SimResult {
            seq_units,
            par_units,
            test_units,
        })
    }
}

/// One loop execution request for [`Session::run_many`].
pub struct LoopJob<'a> {
    /// Interpreter over the program.
    pub machine: &'a Machine,
    /// Subroutine containing the loop.
    pub sub: &'a lip_ir::Subroutine,
    /// The loop statement.
    pub target: &'a lip_ir::Stmt,
    /// Its hybrid analysis.
    pub analysis: &'a LoopAnalysis,
    /// Live program state (mutated by the run).
    pub frame: &'a mut lip_ir::Store,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_every_field() {
        let s = Session::builder()
            .backend(Backend::Bytecode)
            .opt_level(OptLevel::None)
            .pred(PredBackend::Compiled)
            .nthreads(3)
            .par_min(64)
            .spawn_cost(123)
            .fission(false)
            .build();
        let c = s.config();
        assert_eq!(c.backend, Backend::Bytecode);
        assert_eq!(c.opt_level, OptLevel::None);
        assert_eq!(c.pred, PredBackend::Compiled);
        assert_eq!(c.nthreads, 3);
        assert_eq!(c.par_min, 64);
        assert_eq!(c.spawn_cost, 123);
        assert!(!c.fission);
        // Fusion and fission are on by default.
        assert_eq!(SessionConfig::default().opt_level, OptLevel::Fuse);
        assert!(SessionConfig::default().fission);
    }

    #[test]
    fn builder_clamps_degenerate_values() {
        let s = Session::builder().nthreads(0).par_min(0).build();
        assert_eq!(s.config().nthreads, 1);
        assert_eq!(s.config().par_min, 1);
    }

    // One strict-parsing unit test per environment variable (without
    // touching the process environment — `apply` is the seam).

    #[test]
    fn lip_backend_parses_strictly() {
        let mut cfg = SessionConfig::default();
        cfg.apply("LIP_BACKEND", "bytecode").expect("valid");
        assert_eq!(cfg.backend, Backend::Bytecode);
        cfg.apply("LIP_BACKEND", "treewalk").expect("valid");
        assert_eq!(cfg.backend, Backend::TreeWalk);
        let err = cfg.apply("LIP_BACKEND", "bytecoed").unwrap_err();
        assert_eq!(err.var, "LIP_BACKEND");
        assert!(err.reason.contains("bytecoed"), "{err}");
        // The failed apply must not have clobbered the config.
        assert_eq!(cfg.backend, Backend::TreeWalk);
    }

    #[test]
    fn lip_opt_parses_strictly() {
        let mut cfg = SessionConfig::default();
        cfg.apply("LIP_OPT", "none").expect("valid");
        assert_eq!(cfg.opt_level, OptLevel::None);
        cfg.apply("LIP_OPT", "fuse").expect("valid");
        assert_eq!(cfg.opt_level, OptLevel::Fuse);
        cfg.apply("LIP_OPT", "0").expect("valid");
        assert_eq!(cfg.opt_level, OptLevel::None);
        cfg.apply("LIP_OPT", "1").expect("valid");
        assert_eq!(cfg.opt_level, OptLevel::Fuse);
        let err = cfg.apply("LIP_OPT", "fuze").unwrap_err();
        assert_eq!(err.var, "LIP_OPT");
        assert!(err.reason.contains("fuze"), "{err}");
        // The failed apply must not have clobbered the config.
        assert_eq!(cfg.opt_level, OptLevel::Fuse);
    }

    #[test]
    fn lip_pred_parses_strictly() {
        let mut cfg = SessionConfig::default();
        cfg.apply("LIP_PRED", "compiled").expect("valid");
        assert_eq!(cfg.pred, PredBackend::Compiled);
        cfg.apply("LIP_PRED", "tree").expect("valid");
        assert_eq!(cfg.pred, PredBackend::Tree);
        let err = cfg.apply("LIP_PRED", "compild").unwrap_err();
        assert_eq!(err.var, "LIP_PRED");
        assert!(err.reason.contains("compild"), "{err}");
    }

    #[test]
    fn lip_pred_par_min_parses_strictly() {
        let mut cfg = SessionConfig::default();
        cfg.apply("LIP_PRED_PAR_MIN", "2048").expect("valid");
        assert_eq!(cfg.par_min, 2048);
        cfg.apply("LIP_PRED_PAR_MIN", "1").expect("valid");
        assert_eq!(cfg.par_min, 1);
        // Zero, negative and non-numeric are all errors.
        for bad in ["0", "-5", "many", "1e3", ""] {
            let err = cfg.apply("LIP_PRED_PAR_MIN", bad).unwrap_err();
            assert_eq!(err.var, "LIP_PRED_PAR_MIN", "{bad}");
        }
        assert_eq!(cfg.par_min, 1);
    }

    #[test]
    fn lip_fission_parses_strictly() {
        let mut cfg = SessionConfig::default();
        for on in ["on", "ON", "true", "1"] {
            cfg.fission = false;
            cfg.apply("LIP_FISSION", on).expect("valid");
            assert!(cfg.fission, "{on}");
        }
        for off in ["off", "False", "0"] {
            cfg.fission = true;
            cfg.apply("LIP_FISSION", off).expect("valid");
            assert!(!cfg.fission, "{off}");
        }
        let err = cfg.apply("LIP_FISSION", "maybe").unwrap_err();
        assert_eq!(err.var, "LIP_FISSION");
        assert!(err.reason.contains("maybe"), "{err}");
        // The failed apply must not have clobbered the config.
        assert!(!cfg.fission);
    }

    #[test]
    fn lip_obs_parses_strictly() {
        let mut cfg = SessionConfig::default();
        assert_eq!(cfg.obs, ObsLevel::Off);
        cfg.apply("LIP_OBS", "metrics").expect("valid");
        assert_eq!(cfg.obs, ObsLevel::Metrics);
        cfg.apply("LIP_OBS", "trace").expect("valid");
        assert_eq!(cfg.obs, ObsLevel::Trace);
        cfg.apply("LIP_OBS", "OFF").expect("valid");
        assert_eq!(cfg.obs, ObsLevel::Off);
        // Typos are errors, never a silent fallback to off.
        for bad in ["metrcs", "tracing", "on", "1", ""] {
            let err = cfg.apply("LIP_OBS", bad).unwrap_err();
            assert_eq!(err.var, "LIP_OBS", "{bad}");
            assert!(err.reason.contains("observability"), "{err}");
        }
        assert_eq!(cfg.obs, ObsLevel::Off);
    }

    #[test]
    fn observer_builder_wires_the_session_handle() {
        let s = Session::builder().observer(ObsLevel::Metrics).build();
        assert_eq!(s.config().obs, ObsLevel::Metrics);
        assert!(s.obs().enabled());
        assert!(!s.obs().trace_enabled());
        // Nothing ran yet: empty snapshot, no decisions.
        assert!(s.metrics().counters.is_empty());
        assert!(s.explain("nope").is_none());
        // Off sessions report disabled and stay empty.
        let off = Session::default();
        assert!(!off.obs().enabled());
        assert!(off.metrics().counters.is_empty());
    }

    #[test]
    fn shard_key_separates_configs_that_differ() {
        let base = SessionConfig::default();
        let mut other = base.clone();
        assert_eq!(base.shard_key(), other.shard_key());
        other.backend = Backend::Bytecode;
        assert_ne!(base.shard_key(), other.shard_key());
        let mut fission_off = base.clone();
        fission_off.fission = false;
        assert_ne!(base.shard_key(), fission_off.shard_key());
        // The key renders every wire-configurable field by name.
        for field in [
            "backend=",
            "opt=",
            "pred=",
            "nthreads=",
            "par_min=",
            "spawn_cost=",
            "fission=",
            "obs=",
        ] {
            assert!(base.shard_key().contains(field), "{}", base.shard_key());
        }
    }

    #[test]
    fn unknown_variables_are_rejected() {
        let mut cfg = SessionConfig::default();
        let err = cfg.apply("LIP_TYPO", "x").unwrap_err();
        assert!(err.reason.contains("unknown configuration variable"));
    }

    #[test]
    fn sessions_own_disjoint_caches_clones_share_within_one() {
        let src = "
SUBROUTINE t(A, N)
  DIMENSION A(*)
  INTEGER i, N
  DO l1 i = 1, N
    A(i) = 1.0
  ENDDO
END
";
        let m1 = Machine::new(lip_ir::parse_program(src).expect("parses"));
        let m2 = m1.clone();
        let m3 = Machine::new(lip_ir::parse_program(src).expect("parses"));
        let s1 = Session::default();
        let s2 = Session::default();
        assert!(Arc::ptr_eq(&s1.cache(&m1), &s1.cache(&m2)));
        assert!(!Arc::ptr_eq(&s1.cache(&m1), &s1.cache(&m3)));
        assert!(!Arc::ptr_eq(&s1.cache(&m1), &s2.cache(&m1)));
    }
}
