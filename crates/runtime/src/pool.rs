//! Minimal fork-join parallelism over `std::thread` scoped threads.
//!
//! The implementation lives in [`lip_pred::pool`] — the lowest crate
//! that spawns threads — so the parallel executor, the LRPD/inspector
//! tests and the predicate engine all share one chunking substrate:
//! [`chunk_bounds`] is the single source of truth for the block
//! schedule the simulator's makespan model assumes.

pub use lip_pred::pool::{chunk_bounds, parallel_chunks, parallel_chunks_obs};
