//! The conditional-parallelization executor (paper §5).
//!
//! [`crate::Session::run_loop`] puts everything together for one
//! analyzed loop:
//!
//! 1. precompute CIV traces via the loop slice (CIV-COMP),
//! 2. evaluate the predicate cascade against live state (cheapest
//!    stage first; the first success disables the rest),
//! 3. execute: in parallel — with privatized copies (+ static/dynamic
//!    last value), per-thread reduction buffers (or direct shared
//!    updates when the runtime test proved independence) — or through
//!    LRPD speculation when every predicate failed, or sequentially.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;

use lip_analysis::{ArrayPlan, LastValue, LoopAnalysis, LoopClass};
use lip_ir::{
    AccessTracer, ArrayBuf, ArrayView, BinOp, ExecState, Machine, RunError, Stmt, Store, StoreCtx,
    Ty, Value,
};
use lip_obs::{FissionReport, FragmentReport, LoopDecision, StageReport};
use lip_symbolic::Sym;
use std::sync::Mutex;

use crate::backend::{exec_stmt_seq, machine_tracer, CompiledBody, ExecEnv};
use crate::cache::store_fingerprint;
use crate::lrpd::LrpdOutcome;
use crate::merge::{clone_buf, copy_back, identity_buf, merge_into};
use crate::pool::{chunk_bounds, parallel_chunks_obs};

/// How the loop ended up being executed.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecOutcome {
    /// Ran in parallel without any runtime test.
    StaticParallel,
    /// A cascade stage passed; ran in parallel.
    PredicatePassed {
        /// Index of the first successful stage.
        stage: usize,
    },
    /// Every cascade stage failed, but the exact (hoisted) USR
    /// evaluation proved the dependence set empty; ran in parallel
    /// (the §5 last resort before speculation).
    ExactPredicatePassed,
    /// All predicates failed; speculation decided.
    Speculated(LrpdOutcome),
    /// Ran sequentially (classified sequential, or empty plan).
    Sequential,
    /// The loop was distributed: the listed fragments executed in
    /// program order, the parallel ones with the full privatization /
    /// reduction machinery and the residue sequentially.
    Fissioned {
        /// Total fragments executed.
        fragments: usize,
        /// How many of them ran in parallel.
        parallel: usize,
        /// Work units spent inside the parallel fragments (the
        /// "rescued" share of `loop_units`).
        rescued_units: u64,
    },
}

/// Execution statistics (work units are the deterministic interpreter
/// cost model shared with the simulator).
#[derive(Clone, Debug)]
pub struct RunStats {
    /// How the loop executed.
    pub outcome: ExecOutcome,
    /// Units spent on runtime tests (cascade + CIV slices).
    pub test_units: u64,
    /// Units spent executing the loop body.
    pub loop_units: u64,
}

/// Per-array parallel-execution mode derived from the analysis.
#[derive(Clone, Debug)]
pub enum ExecPlan {
    /// Access the shared buffer directly.
    Shared,
    /// Per-chunk private copy; `true` = static last value (the chunk
    /// holding the last iteration writes back), `false` = dynamic last
    /// value (chunk-ordered merge of written elements).
    Private(bool),
    /// Per-chunk identity-initialized buffer merged with the operator.
    ReductionBuffer(BinOp),
}

/// Decision evidence accumulated while one loop runs: the evaluated
/// cascade stages, the exact-test verdict (when reached) and the
/// per-fragment outcomes of a fissioned execution. Populated only when
/// the session's observer is on; folded into a [`LoopDecision`] by
/// [`run_loop_impl`].
#[derive(Default)]
struct DecisionTrace {
    stages: Vec<StageReport>,
    exact_test: Option<bool>,
    fragments: Vec<FragmentReport>,
}

/// How the chosen execution path reads in a decision report.
fn executor_name(outcome: &ExecOutcome) -> String {
    match outcome {
        ExecOutcome::StaticParallel => "parallel (static)".to_owned(),
        ExecOutcome::PredicatePassed { stage } => format!("parallel (stage {stage} passed)"),
        ExecOutcome::ExactPredicatePassed => "parallel (exact test passed)".to_owned(),
        ExecOutcome::Speculated(out) => format!("speculated ({out:?})"),
        ExecOutcome::Sequential => "sequential".to_owned(),
        ExecOutcome::Fissioned {
            fragments,
            parallel,
            ..
        } => format!("fissioned ({parallel}/{fragments} fragments parallel)"),
    }
}

/// The executor driver behind [`crate::Session::run_loop`]: the
/// session absorbs what used to be a `(nthreads, backend, pred)`
/// argument sprawl across three public variants. When the session's
/// observer is on, every run additionally records a [`LoopDecision`]
/// under the loop's label (cascade stage verdicts, exact-test outcome,
/// fission accounting, final executor).
pub(crate) fn run_loop_impl(
    env: &ExecEnv<'_>,
    machine: &Machine,
    sub: &lip_ir::Subroutine,
    target: &Stmt,
    analysis: &LoopAnalysis,
    frame: &mut Store,
) -> Result<RunStats, RunError> {
    let mut dt = DecisionTrace::default();
    let span = env.obs.span("run.loop", || analysis.label.clone());
    let result = run_loop_inner(env, machine, sub, target, analysis, frame, &mut dt);
    match &result {
        Ok(stats) => {
            env.obs.exit_span(span, &executor_name(&stats.outcome));
            if env.obs.enabled() {
                env.obs.count("run.loops", 1);
                env.obs.count("run.test_units", stats.test_units);
                env.obs.count("run.loop_units", stats.loop_units);
            }
            // Decision records allocate (stage strings, map inserts);
            // like spans, they are a `trace`-level instrument so the
            // `metrics` level stays pure cheap aggregates.
            if env.obs.trace_enabled() {
                let mut d = LoopDecision::new(&analysis.label);
                d.class = format!("{:?}", analysis.class);
                d.stages = std::mem::take(&mut dt.stages);
                d.passed_stage = match stats.outcome {
                    ExecOutcome::PredicatePassed { stage } => Some(stage),
                    _ => None,
                };
                d.exact_test = dt.exact_test;
                d.executor = executor_name(&stats.outcome);
                d.test_units = stats.test_units;
                d.loop_units = stats.loop_units;
                if let ExecOutcome::Fissioned { rescued_units, .. } = stats.outcome {
                    d.fission = Some(FissionReport {
                        fragments: std::mem::take(&mut dt.fragments),
                        rescued_units,
                        loop_units: stats.loop_units,
                    });
                }
                env.obs.record_decision(d);
            }
        }
        Err(e) => env.obs.exit_span(span, &format!("error: {e:?}")),
    }
    result
}

fn run_loop_inner(
    env: &ExecEnv<'_>,
    machine: &Machine,
    sub: &lip_ir::Subroutine,
    target: &Stmt,
    analysis: &LoopAnalysis,
    frame: &mut Store,
    dt: &mut DecisionTrace,
) -> Result<RunStats, RunError> {
    let mut test_units = 0u64;

    // CIV-COMP: materialize traces + while-loop trip counts.
    if !analysis.civs.is_empty() || matches!(target, Stmt::While { .. }) {
        let niters = matches!(target, Stmt::While { .. })
            .then(|| lip_symbolic::sym(&format!("{}@niters", analysis.label)));
        test_units += crate::civ::compute_civ_traces_impl(
            env,
            machine,
            sub,
            target,
            &analysis.civs,
            frame,
            niters,
        )?;
    }

    // While loops execute sequentially in this executor (their parallel
    // form requires iteration re-indexing); the simulator models their
    // parallel execution from the traces. The same goes for DO loops
    // with a step other than 1: the chunked drivers below assume a
    // unit-stride iteration space, so anything else runs sequentially
    // (correct on both backends) rather than silently mis-iterating.
    let unit_step = match target {
        Stmt::Do { step: None, .. } => true,
        Stmt::Do { step: Some(e), .. } => {
            let mut st = ExecState::default();
            machine.eval(sub, frame, e, &mut st).map(Value::as_i64) == Ok(1)
        }
        _ => false,
    };
    let (
        Stmt::Do {
            var, lo, hi, body, ..
        },
        true,
    ) = (target, unit_step)
    else {
        let mut st = ExecState::default();
        exec_stmt_seq(env, machine, sub, target, frame, &mut st)?;
        return Ok(RunStats {
            outcome: ExecOutcome::Sequential,
            test_units,
            loop_units: st.cost,
        });
    };

    // Evaluate the cascade.
    let (parallel_ok, outcome) = match &analysis.class {
        LoopClass::StaticParallel => (true, ExecOutcome::StaticParallel),
        LoopClass::StaticSequential => (false, ExecOutcome::Sequential),
        LoopClass::Predicated { .. } => {
            let ctx = StoreCtx(frame);
            let mut fp = |prog: &lip_pred::PredProgram| {
                Some(store_fingerprint(
                    frame,
                    prog.scalar_syms(),
                    prog.array_syms(),
                ))
            };
            // Stage reports render predicate strings — only pay for
            // that when the observer keeps decision records (trace).
            let (passed, units) = if env.obs.trace_enabled() {
                env.cache.pred().first_success_traced(
                    &analysis.cascade,
                    &ctx,
                    100_000_000,
                    env.pred,
                    env.nthreads,
                    &mut fp,
                    &mut dt.stages,
                )
            } else {
                env.cache.pred().first_success(
                    &analysis.cascade,
                    &ctx,
                    100_000_000,
                    env.pred,
                    env.nthreads,
                    &mut fp,
                )
            };
            test_units += units;
            match passed {
                Some(k) => (true, ExecOutcome::PredicatePassed { stage: k }),
                None => {
                    // A fragment already classified statically
                    // sequential carries a dependence the whole-loop
                    // exact test is all but guaranteed to rediscover
                    // (at a cost superlinear in the array sizes), so
                    // distribute right away: fragments that can be
                    // rescued run their own, smaller tests, and the
                    // sequential residue runs as it would have anyway.
                    if let Some(fp) = fission_plan(env, analysis) {
                        if fp
                            .fragments
                            .iter()
                            .any(|f| f.analysis.class == LoopClass::StaticSequential)
                        {
                            return run_fissioned(
                                env, machine, sub, target, fp, frame, test_units, dt,
                            );
                        }
                    }
                    // Last resort (§5): exact USR evaluation, then TLS.
                    let exact = analysis
                        .ind_usr
                        .as_ref()
                        .and_then(|u| lip_usr::eval_usr(u, &ctx, 100_000_000));
                    if env.obs.trace_enabled() {
                        dt.exact_test = exact.as_ref().map(|s| s.is_empty());
                    }
                    match exact {
                        Some(s) if s.is_empty() => (true, ExecOutcome::ExactPredicatePassed),
                        Some(_) => {
                            // Genuine dependences: the whole loop can't
                            // run parallel, but a fission plan may
                            // still salvage the independent fragments.
                            if let Some(fp) = fission_plan(env, analysis) {
                                return run_fissioned(
                                    env, machine, sub, target, fp, frame, test_units, dt,
                                );
                            }
                            (false, ExecOutcome::Sequential)
                        }
                        None => {
                            let arrays: Vec<Sym> = analysis.arrays.keys().copied().collect();
                            let (out, cost) = crate::lrpd::lrpd_execute_impl(
                                env, machine, sub, target, frame, &arrays,
                            )?;
                            return Ok(RunStats {
                                outcome: ExecOutcome::Speculated(out),
                                test_units,
                                loop_units: cost,
                            });
                        }
                    }
                }
            }
        }
        LoopClass::NeedsFallback(_) => {
            // Straight to speculation on the written arrays.
            let arrays: Vec<Sym> = analysis.arrays.keys().copied().collect();
            let (out, cost) =
                crate::lrpd::lrpd_execute_impl(env, machine, sub, target, frame, &arrays)?;
            return Ok(RunStats {
                outcome: ExecOutcome::Speculated(out),
                test_units,
                loop_units: cost,
            });
        }
        LoopClass::Fissioned { .. } => match fission_plan(env, analysis) {
            Some(fp) => {
                return run_fissioned(env, machine, sub, target, fp, frame, test_units, dt);
            }
            // Knob off at run time (or a plan-less class, which the
            // analysis never produces): plain sequential execution.
            None => (false, ExecOutcome::Sequential),
        },
    };

    if !parallel_ok {
        // Sequential execution; reductions/privatization unnecessary.
        let mut st = ExecState::default();
        exec_stmt_seq(env, machine, sub, target, frame, &mut st)?;
        return Ok(RunStats {
            outcome: ExecOutcome::Sequential,
            test_units,
            loop_units: st.cost,
        });
    }

    // Build per-array execution plans.
    let plans = build_exec_plans(env, analysis, frame);

    let mut st = ExecState::default();
    let lo_v = machine.eval(sub, frame, lo, &mut st)?.as_i64();
    let hi_v = machine.eval(sub, frame, hi, &mut st)?.as_i64();
    let shape = DoShape {
        var: *var,
        lo: lo_v,
        hi: hi_v,
        body,
    };
    let plan = BodyPlan {
        arrays: &plans,
        scalar_reds: &analysis.scalar_reductions,
        civs: &analysis.civs,
        scalar_finals: &[],
    };
    let loop_units = run_parallel_do(env, machine, sub, &shape, frame, &plan)?;
    Ok(RunStats {
        outcome,
        test_units,
        loop_units: loop_units + st.cost,
    })
}

/// The analysis' fission plan, iff the session's fission knob is on.
fn fission_plan<'a>(
    env: &ExecEnv<'_>,
    analysis: &'a LoopAnalysis,
) -> Option<&'a lip_analysis::FissionPlan> {
    env.cache
        .fission()
        .then_some(analysis.fission.as_deref())
        .flatten()
}

/// Lowers the per-array analysis plans to execution modes against live
/// state (reduction cascades are evaluated here: a pass means direct
/// shared updates, a fail means buffered merge).
fn build_exec_plans(
    env: &ExecEnv<'_>,
    analysis: &LoopAnalysis,
    frame: &Store,
) -> HashMap<Sym, ExecPlan> {
    let mut plans: HashMap<Sym, ExecPlan> = HashMap::new();
    for (arr, plan) in &analysis.arrays {
        let mode = match plan {
            ArrayPlan::ReadOnly | ArrayPlan::Independent | ArrayPlan::Predicated(_) => {
                ExecPlan::Shared
            }
            ArrayPlan::Privatized { last_value, .. } => {
                ExecPlan::Private(matches!(last_value, LastValue::Static))
            }
            ArrayPlan::Reduction { kind, op, cascade } => {
                // No cascade stored = statically independent; a passing
                // cascade proves distinct iterations touch distinct
                // elements. Either way direct shared updates are safe;
                // otherwise buffer per thread and merge.
                let _ = kind;
                let direct = match cascade {
                    Some(c) => {
                        let ctx = StoreCtx(frame);
                        // Reduction cascades were never charged to
                        // test_units (the plan decision is part of the
                        // codegen template); the engine call keeps it
                        // that way while sharing the compile cache.
                        let (hit, _units) = env.cache.pred().first_success(
                            c,
                            &ctx,
                            100_000_000,
                            env.pred,
                            env.nthreads,
                            &mut |prog| {
                                Some(store_fingerprint(
                                    frame,
                                    prog.scalar_syms(),
                                    prog.array_syms(),
                                ))
                            },
                        );
                        hit.is_some()
                    }
                    None => true,
                };
                if direct {
                    ExecPlan::Shared
                } else {
                    ExecPlan::ReductionBuffer(*op)
                }
            }
            ArrayPlan::Fallback(_) => ExecPlan::Shared, // handled above
        };
        plans.insert(*arr, mode);
    }
    plans
}

/// Executes a distributed loop: fragments in program order, parallel
/// where each fragment's own verdict (cascade / exact test) allows,
/// sequentially otherwise.
///
/// Work-unit accounting reproduces the sequential interpreter exactly —
/// one unit for the DO statement, bounds evaluated once, then every
/// body statement charged per iteration (just partitioned across
/// fragments) — so `loop_units` of a fissioned run equals the
/// unfissioned sequential run on the same state. Fragments never enter
/// speculation: LRPD's misspeculation re-runs would break that
/// determinism for no model payoff.
#[allow(clippy::too_many_arguments)]
fn run_fissioned(
    env: &ExecEnv<'_>,
    machine: &Machine,
    sub: &lip_ir::Subroutine,
    target: &Stmt,
    plan: &lip_analysis::FissionPlan,
    frame: &mut Store,
    mut test_units: u64,
    dt: &mut DecisionTrace,
) -> Result<RunStats, RunError> {
    let Stmt::Do { var, lo, hi, .. } = target else {
        return Err(RunError::StepLimit);
    };
    // Mirror the interpreter's DO accounting: the statement itself,
    // then its bounds, once.
    let mut st = ExecState::default();
    st.cost += 1;
    let lo_v = machine.eval(sub, frame, lo, &mut st)?.as_i64();
    let hi_v = machine.eval(sub, frame, hi, &mut st)?.as_i64();
    let mut loop_units = st.cost;
    let mut rescued_units = 0u64;
    let mut parallel = 0usize;

    for frag in &plan.fragments {
        let a = &frag.analysis;
        let Stmt::Do { body: fbody, .. } = &frag.target else {
            continue;
        };
        // CIV traces first: a fragment's cascade may reference them.
        if !a.civs.is_empty() {
            test_units += crate::civ::compute_civ_traces_impl(
                env,
                machine,
                sub,
                &frag.target,
                &a.civs,
                frame,
                None,
            )?;
        }
        // Per-fragment sub-decision, recorded into the explain report
        // when tracing: cascade stages tried and the hoisted exact-test
        // verdict, mirroring the top-level decision shape.
        let mut frag_stages: Vec<StageReport> = Vec::new();
        let mut frag_exact: Option<bool> = None;
        let parallel_ok = match &a.class {
            LoopClass::StaticParallel => true,
            LoopClass::Predicated { .. } => {
                let ctx = StoreCtx(frame);
                let (passed, units) = env.cache.pred().first_success_traced(
                    &a.cascade,
                    &ctx,
                    100_000_000,
                    env.pred,
                    env.nthreads,
                    &mut |prog| {
                        Some(store_fingerprint(
                            frame,
                            prog.scalar_syms(),
                            prog.array_syms(),
                        ))
                    },
                    &mut frag_stages,
                );
                test_units += units;
                if passed.is_some() {
                    true
                } else {
                    let exact = matches!(
                        a.ind_usr
                            .as_ref()
                            .and_then(|u| lip_usr::eval_usr(u, &ctx, 100_000_000)),
                        Some(s) if s.is_empty()
                    );
                    frag_exact = Some(exact);
                    exact
                }
            }
            LoopClass::NeedsFallback(lip_analysis::FallbackKind::HoistUsr) => {
                let ctx = StoreCtx(frame);
                let exact = matches!(
                    a.ind_usr
                        .as_ref()
                        .and_then(|u| lip_usr::eval_usr(u, &ctx, 100_000_000)),
                    Some(s) if s.is_empty()
                );
                frag_exact = Some(exact);
                exact
            }
            _ => false,
        };
        let ran_parallel = parallel_ok && hi_v >= lo_v;
        let frag_units = if ran_parallel {
            let plans = build_exec_plans(env, a, frame);
            let shape = DoShape {
                var: *var,
                lo: lo_v,
                hi: hi_v,
                body: fbody,
            };
            let finals: Vec<Sym> = frag
                .assigned
                .iter()
                .copied()
                .filter(|s| !a.scalar_reductions.contains(s) && !a.civs.iter().any(|(c, _)| c == s))
                .collect();
            let bp = BodyPlan {
                arrays: &plans,
                scalar_reds: &a.scalar_reductions,
                civs: &a.civs,
                scalar_finals: &finals,
            };
            let units = run_parallel_do(env, machine, sub, &shape, frame, &bp)?;
            rescued_units += units;
            loop_units += units;
            parallel += 1;
            units
        } else {
            let mut fst = ExecState::default();
            run_seq_fragment(env, machine, sub, *var, lo_v, hi_v, fbody, frame, &mut fst)?;
            loop_units += fst.cost;
            fst.cost
        };
        if env.obs.trace_enabled() {
            let flabel = match &frag.target {
                Stmt::Do { label: Some(l), .. } => l.clone(),
                _ => format!("fragment {}", dt.fragments.len()),
            };
            env.obs.event("run.fragment", || {
                format!(
                    "{flabel}: {} ({frag_units} units)",
                    if ran_parallel {
                        "parallel"
                    } else {
                        "sequential"
                    }
                )
            });
            dt.fragments.push(FragmentReport {
                label: flabel,
                class: format!("{:?}", a.class),
                parallel: ran_parallel,
                units: frag_units,
                stages: std::mem::take(&mut frag_stages),
                exact_test: frag_exact,
            });
        }
    }
    // Sequential DO semantics leave the variable at its last value.
    if hi_v >= lo_v {
        frame.set_scalar(*var, Value::Int(hi_v));
    }
    Ok(RunStats {
        outcome: ExecOutcome::Fissioned {
            fragments: plan.fragments.len(),
            parallel,
            rescued_units,
        },
        test_units,
        loop_units,
    })
}

/// Sequential residue of a fissioned loop: iterate the (already
/// evaluated) bounds over just this fragment's statements, charging
/// only per-iteration body costs — the enclosing DO was charged once by
/// the caller.
#[allow(clippy::too_many_arguments)]
fn run_seq_fragment(
    env: &ExecEnv<'_>,
    machine: &Machine,
    sub: &lip_ir::Subroutine,
    var: Sym,
    lo: i64,
    hi: i64,
    body: &[Stmt],
    frame: &mut Store,
    st: &mut ExecState,
) -> Result<(), RunError> {
    if hi < lo {
        return Ok(());
    }
    if env.backend.is_bytecode() {
        if let Some(cb) = CompiledBody::new(env.cache, machine, sub, body, &[], &[var]) {
            let var_slot = cb.chunk().scalar_slot(var).expect("interned");
            let vm = cb.vm(machine);
            let mut f = cb.frame(frame);
            if env.obs.trace_enabled() {
                let mut dc = lip_vm::DispatchCounts::default();
                for i in lo..=hi {
                    f.set_scalar(var_slot, Value::Int(i));
                    vm.run_block_counting(cb.block, &mut f, st, machine_tracer(machine), &mut dc)?;
                }
                env.obs.count("vm.ops", dc.ops);
                env.obs.count("vm.fused_ops", dc.fused_ops);
                env.obs.count("vm.red_ops", dc.red_ops);
            } else {
                for i in lo..=hi {
                    f.set_scalar(var_slot, Value::Int(i));
                    vm.run_block(cb.block, &mut f, st, machine_tracer(machine))?;
                }
            }
            f.writeback_scalars(cb.chunk(), frame);
            return Ok(());
        }
    }
    for i in lo..=hi {
        frame.set_scalar(var, Value::Int(i));
        machine.exec_block(sub, frame, body, st)?;
    }
    Ok(())
}

/// The concrete (evaluated-bounds) iteration space of a unit-stride DO
/// loop handed to the parallel driver.
#[derive(Clone, Copy)]
struct DoShape<'a> {
    var: Sym,
    lo: i64,
    hi: i64,
    body: &'a [Stmt],
}

/// How the loop body's state splits across chunks: per-array execution
/// plans, scalar reduction accumulators and CIV trace seeds.
#[derive(Clone, Copy)]
struct BodyPlan<'a> {
    arrays: &'a HashMap<Sym, ExecPlan>,
    scalar_reds: &'a [Sym],
    civs: &'a [(Sym, Sym)],
    /// Privatized scalars whose sequential-final values (the last
    /// chunk's, which executed iteration `hi` last) are restored after
    /// the parallel run. The fission path uses this so a rescued
    /// fragment stays observationally identical to its sequential
    /// execution; the whole-loop paths keep the classic convention
    /// (empty — private scalar finals are dead by classification).
    scalar_finals: &'a [Sym],
}

/// A tracer recording written element indexes (dynamic last value).
struct WriteSetTracer {
    interesting: HashSet<Sym>,
    writes: Mutex<HashMap<Sym, HashSet<usize>>>,
}

impl AccessTracer for WriteSetTracer {
    fn read(&self, _arr: Sym, _idx: usize) {}
    fn write(&self, arr: Sym, idx: usize) {
        if self.interesting.contains(&arr) {
            self.writes
                .lock()
                .unwrap()
                .entry(arr)
                .or_default()
                .insert(idx);
        }
    }
}

fn run_parallel_do(
    env: &ExecEnv<'_>,
    machine: &Machine,
    sub: &lip_ir::Subroutine,
    shape: &DoShape<'_>,
    frame: &mut Store,
    plan: &BodyPlan<'_>,
) -> Result<u64, RunError> {
    let DoShape { var, lo, hi, body } = *shape;
    let BodyPlan {
        arrays: plans,
        scalar_reds,
        civs,
        scalar_finals,
    } = *plan;
    if hi < lo {
        return Ok(0);
    }
    // Compile the loop body once; every worker thread then executes
    // bytecode through its own `Send` frame instead of re-walking the
    // AST per iteration.
    let compiled = if env.backend.is_bytecode() {
        let mut extra: Vec<Sym> = vec![var];
        extra.extend(scalar_reds.iter().copied());
        extra.extend(civs.iter().map(|(s, _)| *s));
        extra.extend(scalar_finals.iter().copied());
        CompiledBody::new(env.cache, machine, sub, body, &[], &extra)
    } else {
        None
    };
    let chunks = chunk_bounds(env.nthreads, lo, hi);
    let nchunks = chunks.len();
    let total_cost = Mutex::new(0u64);

    struct ChunkOut {
        idx: usize,
        red: Vec<(Sym, Arc<ArrayBuf>, BinOp)>,
        privs: Vec<(Sym, Arc<ArrayBuf>, bool)>,
        writes: HashMap<Sym, HashSet<usize>>,
        scalars: Vec<(Sym, Value)>,
        last_scalar_values: Vec<(Sym, Value)>,
    }
    let outs: Mutex<Vec<ChunkOut>> = Mutex::new(Vec::new());
    let any_error = AtomicBool::new(false);
    let completed = AtomicUsize::new(0);

    let dlv_arrays: HashSet<Sym> = plans
        .iter()
        .filter(|(_, p)| matches!(p, ExecPlan::Private(false)))
        .map(|(a, _)| *a)
        .collect();

    let obs_opt = env.obs.enabled().then_some(env.obs);
    parallel_chunks_obs(env.nthreads, lo, hi, obs_opt, |chunk_idx, c_lo, c_hi| {
        let mut local = frame.clone();
        let mut out = ChunkOut {
            idx: chunk_idx,
            red: Vec::new(),
            privs: Vec::new(),
            writes: HashMap::new(),
            scalars: Vec::new(),
            last_scalar_values: Vec::new(),
        };
        // Rebind privatized / reduction arrays.
        for (arr, plan) in plans {
            let Some(view) = frame.array(*arr) else {
                continue;
            };
            match plan {
                ExecPlan::Shared => {}
                ExecPlan::Private(slv) => {
                    // Copy-in.
                    let buf = clone_buf(&view.buf);
                    local.bind_array(
                        *arr,
                        ArrayView {
                            buf: buf.clone(),
                            offset: view.offset,
                            extents: view.extents.clone(),
                        },
                    );
                    out.privs.push((*arr, buf, *slv));
                }
                ExecPlan::ReductionBuffer(op) => {
                    let buf = identity_buf(&view.buf, *op);
                    local.bind_array(
                        *arr,
                        ArrayView {
                            buf: buf.clone(),
                            offset: view.offset,
                            extents: view.extents.clone(),
                        },
                    );
                    out.red.push((*arr, buf, *op));
                }
            }
        }
        // CIV-COMP: seed loop-carried scalars from their precomputed
        // traces at the chunk's first iteration (the whole point of the
        // slice precomputation — chunks become independent).
        for (s, trace) in civs {
            if let Some(view) = frame.array(*trace) {
                if let Some(v) = view.get_lin(c_lo) {
                    local.set_scalar(*s, v);
                }
            }
        }
        // Scalar reductions start from the identity.
        for s in scalar_reds {
            let ty = sub.ty_of(*s);
            local.set_scalar(
                *s,
                match ty {
                    Ty::Int => Value::Int(0),
                    Ty::Real => Value::Real(0.0),
                },
            );
        }
        // Dynamic-last-value tracking needs write sets.
        let tracer = (!dlv_arrays.is_empty()).then(|| {
            Arc::new(WriteSetTracer {
                interesting: dlv_arrays.clone(),
                writes: Mutex::new(HashMap::new()),
            })
        });
        let mut st = ExecState::default();
        if let Some(cb) = &compiled {
            let dyn_tracer: Option<&dyn AccessTracer> = match &tracer {
                Some(t) => Some(&**t),
                None => machine_tracer(machine),
            };
            let var_slot = cb.chunk().scalar_slot(var).expect("interned");
            let vm = cb.vm(machine);
            let mut f = cb.frame(&local);
            if env.obs.trace_enabled() {
                // The counting dispatch loop is a separate
                // monomorphization; the uncounted branch below is the
                // exact pre-observability code path. Per-op counting
                // is a trace-level instrument: measurable (~2 extra
                // ALU ops per dispatch), so `metrics` skips it.
                let mut dc = lip_vm::DispatchCounts::default();
                for i in c_lo..=c_hi {
                    f.set_scalar(var_slot, Value::Int(i));
                    vm.run_block_counting(cb.block, &mut f, &mut st, dyn_tracer, &mut dc)?;
                }
                env.obs.count("vm.ops", dc.ops);
                env.obs.count("vm.fused_ops", dc.fused_ops);
                env.obs.count("vm.red_ops", dc.red_ops);
            } else {
                for i in c_lo..=c_hi {
                    f.set_scalar(var_slot, Value::Int(i));
                    vm.run_block(cb.block, &mut f, &mut st, dyn_tracer)?;
                }
            }
            f.writeback_scalars(cb.chunk(), &mut local);
        } else {
            let m = match &tracer {
                Some(t) => machine.with_tracer(t.clone() as Arc<dyn AccessTracer>),
                None => machine.clone(),
            };
            for i in c_lo..=c_hi {
                local.set_scalar(var, Value::Int(i));
                m.exec_block(sub, &mut local, body, &mut st)?;
            }
        }
        if let Some(t) = tracer {
            out.writes = std::mem::take(&mut *t.writes.lock().unwrap());
        }
        for s in scalar_reds {
            if let Some(v) = local.scalar(*s) {
                out.scalars.push((*s, v));
            }
        }
        // Live-out loop variable (sequential semantics: the interpreter
        // leaves the variable at its last executed value). The last
        // chunk ran its iterations in order ending at `hi`, so its
        // private copies of the `scalar_finals` syms hold exactly the
        // sequential-final values too.
        if chunk_idx == nchunks - 1 {
            out.last_scalar_values.push((var, Value::Int(hi)));
            for s in scalar_finals {
                if let Some(v) = local.scalar(*s) {
                    out.last_scalar_values.push((*s, v));
                }
            }
        }
        *total_cost.lock().unwrap() += st.cost;
        outs.lock().unwrap().push(out);
        completed.fetch_add(1, AtomicOrdering::Relaxed);
        Ok::<(), RunError>(())
    })?;
    if any_error.load(AtomicOrdering::Relaxed) {
        return Err(RunError::StepLimit);
    }

    // Merge phase (sequential, deterministic order): typed flat-slice
    // kernels from [`crate::merge`] — Int buffers merge in `i64`, Real
    // buffers in `f64`, never through a boxed round-trip.
    let merge_start = env.obs.enabled().then(std::time::Instant::now);
    let mut outs = outs.into_inner().unwrap();
    outs.sort_by_key(|o| o.idx);
    for out in &outs {
        // Reductions merge in any order.
        for (arr, buf, op) in &out.red {
            let shared = frame.array(*arr).expect("bound").buf.clone();
            merge_into(&shared, buf, *op);
        }
        // DLV: chunk order, written elements only (sparse, so the
        // per-element path stays).
        for (arr, buf, slv) in &out.privs {
            if *slv {
                continue;
            }
            if let Some(written) = out.writes.get(arr) {
                let shared = frame.array(*arr).expect("bound").buf.clone();
                for &idx in written {
                    shared.set(idx, buf.get(idx));
                }
            }
        }
    }
    // SLV: the chunk containing the last iteration writes back wholesale.
    if let Some(last) = outs.last() {
        for (arr, buf, slv) in &last.privs {
            if *slv {
                let shared = frame.array(*arr).expect("bound").buf.clone();
                copy_back(&shared, buf);
            }
        }
        for (s, v) in &last.last_scalar_values {
            frame.set_scalar(*s, *v);
        }
    }
    // Scalar reductions: initial + Σ deltas, accumulated in the
    // scalar's declared type (the Int path wraps, matching
    // `apply_bin`'s in-loop arithmetic).
    for s in scalar_reds {
        let ty = sub.ty_of(*s);
        let init = frame.scalar(*s).unwrap_or(match ty {
            Ty::Int => Value::Int(0),
            Ty::Real => Value::Real(0.0),
        });
        let v = match ty {
            Ty::Int => {
                let mut acc = init.as_i64();
                for out in &outs {
                    for (t, v) in &out.scalars {
                        if t == s {
                            acc = acc.wrapping_add(v.as_i64());
                        }
                    }
                }
                Value::Int(acc)
            }
            Ty::Real => {
                let mut acc = init.as_f64();
                for out in &outs {
                    for (t, v) in &out.scalars {
                        if t == s {
                            acc += v.as_f64();
                        }
                    }
                }
                Value::Real(acc)
            }
        };
        frame.set_scalar(*s, v);
    }
    if let Some(start) = merge_start {
        env.obs
            .record_ns("exec.merge_ns", start.elapsed().as_nanos() as u64);
    }
    Ok(total_cost.into_inner().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use lip_analysis::{analyze_loop, AnalysisConfig};
    use lip_ir::parse_program;
    use lip_symbolic::sym;

    fn full_setup(src: &str, label: &str) -> (Machine, lip_ir::Subroutine, Stmt, LoopAnalysis) {
        let prog = parse_program(src).expect("parses");
        let sub = prog.units[0].clone();
        let target = sub.find_loop(label).expect("loop").clone();
        let analysis =
            analyze_loop(&prog, sub.name, label, &AnalysisConfig::default()).expect("analyzed");
        (Machine::new(prog), sub, target, analysis)
    }

    /// A default two-thread session (what the old free `run_loop`
    /// call sites passed explicitly).
    fn session2() -> Session {
        Session::builder().nthreads(2).build()
    }

    #[test]
    fn static_parallel_matches_sequential() {
        let src = "
SUBROUTINE t(A, B, N)
  DIMENSION A(*), B(*)
  INTEGER i, N
  DO l1 i = 1, N
    A(i) = B(i) * 2.0 + 1.0
  ENDDO
END
";
        let (machine, sub, target, analysis) = full_setup(src, "l1");
        let n = 1000usize;
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        frame.alloc_real(sym("A"), n);
        let b = frame.alloc_real(sym("B"), n);
        for i in 0..n {
            b.set(i, Value::Real(i as f64));
        }
        let stats = session2()
            .run_loop(&machine, &sub, &target, &analysis, &mut frame)
            .expect("runs");
        assert_eq!(stats.outcome, ExecOutcome::StaticParallel);
        let a = frame.array(sym("A")).expect("A");
        for i in 0..n {
            assert_eq!(a.get_f64(i), (i as f64) * 2.0 + 1.0);
        }
    }

    #[test]
    fn predicate_pass_then_parallel() {
        // A(i) = A(i+M): parallel iff M >= N.
        let src = "
SUBROUTINE t(A, N, M)
  DIMENSION A(*)
  INTEGER i, N, M
  DO l1 i = 1, N
    A(i) = A(i + M) + 1.0
  ENDDO
END
";
        let (machine, sub, target, analysis) = full_setup(src, "l1");
        let n = 500i64;
        let mut frame = Store::new();
        frame.set_int(sym("N"), n).set_int(sym("M"), n);
        let a = frame.alloc_real(sym("A"), 2 * n as usize);
        for i in 0..(2 * n) as usize {
            a.set(i, Value::Real(i as f64));
        }
        let stats = session2()
            .run_loop(&machine, &sub, &target, &analysis, &mut frame)
            .expect("runs");
        assert!(matches!(stats.outcome, ExecOutcome::PredicatePassed { .. }));
        let av = frame.array(sym("A")).expect("A");
        assert_eq!(av.get_f64(0), (n as f64) + 1.0);
        assert!(stats.test_units > 0);

        // Failing predicate: runs sequentially, still correct.
        let mut frame2 = Store::new();
        frame2.set_int(sym("N"), n).set_int(sym("M"), 1);
        let a2 = frame2.alloc_real(sym("A"), (n + 1) as usize);
        for i in 0..=(n as usize) {
            a2.set(i, Value::Real(0.0));
        }
        a2.set(n as usize, Value::Real(7.0));
        let stats2 = session2()
            .run_loop(&machine, &sub, &target, &analysis, &mut frame2)
            .expect("runs");
        assert_eq!(stats2.outcome, ExecOutcome::Sequential);
        // Sequential anti-dependence semantics: each A(i) reads the OLD
        // A(i+1), so only A(N) sees the seeded 7.0.
        let av2 = frame2.array(sym("A")).expect("A");
        assert_eq!(av2.get_f64(0), 1.0);
        assert_eq!(av2.get_f64((n - 1) as usize), 8.0);
    }

    #[test]
    fn buffered_reduction_is_exact() {
        // Non-injective index array: the cascade fails, buffers merge.
        let src = "
SUBROUTINE t(A, B, N)
  DIMENSION A(100)
  INTEGER B(*)
  INTEGER i, N
  DO l1 i = 1, N
    A(B(i)) = A(B(i)) + 1.0
  ENDDO
END
";
        let (machine, sub, target, analysis) = full_setup(src, "l1");
        let n = 1000usize;
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        frame.alloc_real(sym("A"), 100);
        let b = frame.alloc_int(sym("B"), n);
        for i in 0..n {
            b.set(i, Value::Int((i % 10 + 1) as i64)); // heavy collisions
        }
        let stats = session2()
            .run_loop(&machine, &sub, &target, &analysis, &mut frame)
            .expect("runs");
        // Regardless of path, the histogram must be exact.
        let a = frame.array(sym("A")).expect("A");
        for k in 0..10 {
            assert_eq!(
                a.get_f64(k),
                100.0,
                "bucket {k} (outcome {:?})",
                stats.outcome
            );
        }
    }

    /// Int reductions must merge in `i64`: addends above 2^53 and
    /// totals near `i64::MAX` are corrupted by any `f64` round-trip in
    /// the merge phase. The parallel result must be bit-identical to
    /// the sequential interpreter's.
    #[test]
    fn int_buffered_reduction_is_bit_identical_to_sequential() {
        let src = "
SUBROUTINE t(A, B, N)
  INTEGER A(100)
  INTEGER B(*)
  INTEGER i, N
  DO l1 i = 1, N
    A(B(i)) = A(B(i)) + 9007199254740993
  ENDDO
END
";
        let (machine, sub, target, analysis) = full_setup(src, "l1");
        let n = 1000usize;
        let setup = |frame: &mut Store| {
            frame.set_int(sym("N"), n as i64);
            let a = frame.alloc_int(sym("A"), 100);
            for k in 0..100 {
                a.set(k, Value::Int((1 << 62) + k as i64));
            }
            let b = frame.alloc_int(sym("B"), n);
            for i in 0..n {
                b.set(i, Value::Int((i % 10 + 1) as i64)); // heavy collisions
            }
        };
        let mut par = Store::new();
        setup(&mut par);
        let stats = session2()
            .run_loop(&machine, &sub, &target, &analysis, &mut par)
            .expect("runs");
        let mut seq = Store::new();
        setup(&mut seq);
        machine
            .exec_block(
                &sub,
                &mut seq,
                std::slice::from_ref(&target),
                &mut ExecState::default(),
            )
            .expect("sequential");
        let ap = par.array(sym("A")).expect("A");
        let asq = seq.array(sym("A")).expect("A");
        for k in 0..100 {
            assert_eq!(
                ap.buf.get(k),
                asq.buf.get(k),
                "A[{k}] diverged from sequential (outcome {:?})",
                stats.outcome
            );
        }
        // Each of the 10 hot buckets took 100 additions of 2^53 + 1 —
        // a total no `f64` can represent.
        assert_eq!(
            ap.buf.get(0),
            Value::Int((1 << 62) + 100 * 9007199254740993i64)
        );
    }

    /// Int MIN/MAX reductions over values near `i64::MAX`: the typed
    /// identities (`i64::MAX`/`i64::MIN`) and the `i64` merge must
    /// reproduce the sequential result exactly — an `f64` round-trip
    /// rounds these values to 2^63 and saturates.
    #[test]
    fn int_min_max_reduction_is_bit_identical_to_sequential() {
        for intr in ["MIN", "MAX"] {
            let src = format!(
                "
SUBROUTINE t(A, B, C, N)
  INTEGER A(10)
  INTEGER B(*), C(*)
  INTEGER i, N
  DO l1 i = 1, N
    A(B(i)) = {intr}(A(B(i)), C(i))
  ENDDO
END
"
            );
            let (machine, sub, target, analysis) = full_setup(&src, "l1");
            let n = 400usize;
            let seed = if intr == "MIN" { i64::MAX } else { i64::MIN };
            let setup = |frame: &mut Store| {
                frame.set_int(sym("N"), n as i64);
                let a = frame.alloc_int(sym("A"), 10);
                for k in 0..10 {
                    a.set(k, Value::Int(seed));
                }
                let b = frame.alloc_int(sym("B"), n);
                let c = frame.alloc_int(sym("C"), n);
                for i in 0..n {
                    b.set(i, Value::Int((i % 10 + 1) as i64));
                    // Distinct values within 2^53 of i64::MAX — an f64
                    // cannot tell them apart.
                    c.set(i, Value::Int(i64::MAX - 1000 * i as i64 - 1));
                }
            };
            let mut par = Store::new();
            setup(&mut par);
            let stats = session2()
                .run_loop(&machine, &sub, &target, &analysis, &mut par)
                .expect("runs");
            let mut seq = Store::new();
            setup(&mut seq);
            machine
                .exec_block(
                    &sub,
                    &mut seq,
                    std::slice::from_ref(&target),
                    &mut ExecState::default(),
                )
                .expect("sequential");
            let ap = par.array(sym("A")).expect("A");
            let asq = seq.array(sym("A")).expect("A");
            for k in 0..10 {
                assert_eq!(
                    ap.buf.get(k),
                    asq.buf.get(k),
                    "{intr} A[{k}] diverged (outcome {:?})",
                    stats.outcome
                );
            }
        }
    }

    /// Int scalar reductions accumulate in `i64` with wrapping adds
    /// (matching `apply_bin`'s in-loop arithmetic): overflow past
    /// `i64::MAX` must wrap bit-identically to sequential execution,
    /// not panic or detour through `f64`.
    #[test]
    fn int_scalar_reduction_wraps_like_sequential() {
        let src = "
SUBROUTINE t(A, N)
  INTEGER A(*)
  INTEGER i, N, s
  DO l1 i = 1, N
    s = s + A(i)
  ENDDO
END
";
        let (machine, sub, target, analysis) = full_setup(src, "l1");
        let n = 100usize;
        let setup = |frame: &mut Store| {
            frame.set_int(sym("N"), n as i64);
            frame.set_scalar(sym("s"), Value::Int(i64::MAX - 50));
            let a = frame.alloc_int(sym("A"), n);
            for i in 0..n {
                a.set(i, Value::Int((1 << 53) + 1));
            }
        };
        let mut par = Store::new();
        setup(&mut par);
        session2()
            .run_loop(&machine, &sub, &target, &analysis, &mut par)
            .expect("runs");
        let mut seq = Store::new();
        setup(&mut seq);
        machine
            .exec_block(
                &sub,
                &mut seq,
                std::slice::from_ref(&target),
                &mut ExecState::default(),
            )
            .expect("sequential");
        assert_eq!(par.scalar(sym("s")), seq.scalar(sym("s")));
        assert_eq!(
            par.scalar(sym("s")),
            Some(Value::Int(
                (i64::MAX - 50).wrapping_add(100 * ((1 << 53) + 1))
            ))
        );
    }

    /// An unbound Int accumulator seeds from `Int(0)` — the declared
    /// type — not a `Real(0.0)` default that would flip the merged
    /// scalar to `f64`.
    #[test]
    fn unbound_int_scalar_reduction_seeds_typed_zero() {
        let src = "
SUBROUTINE t(A, N)
  INTEGER A(*)
  INTEGER i, N, s
  DO l1 i = 1, N
    s = s + A(i)
  ENDDO
END
";
        let (machine, sub, target, analysis) = full_setup(src, "l1");
        let n = 100usize;
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        let a = frame.alloc_int(sym("A"), n);
        for i in 0..n {
            a.set(i, Value::Int((1 << 53) + 1));
        }
        session2()
            .run_loop(&machine, &sub, &target, &analysis, &mut frame)
            .expect("runs");
        assert_eq!(
            frame.scalar(sym("s")),
            Some(Value::Int(100 * ((1 << 53) + 1)))
        );
    }

    #[test]
    fn scalar_reduction_merges() {
        let src = "
SUBROUTINE t(A, N)
  DIMENSION A(*)
  INTEGER i, N
  s = 10.0
  DO l1 i = 1, N
    s = s + A(i)
  ENDDO
END
";
        let prog = parse_program(src).expect("parses");
        let sub = prog.units[0].clone();
        let target = sub.find_loop("l1").expect("loop").clone();
        let analysis =
            analyze_loop(&prog, sub.name, "l1", &AnalysisConfig::default()).expect("analyzed");
        let machine = Machine::new(prog);
        let n = 100usize;
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        frame.set_scalar(sym("s"), Value::Real(10.0));
        let a = frame.alloc_real(sym("A"), n);
        for i in 0..n {
            a.set(i, Value::Real(1.0));
        }
        session2()
            .run_loop(&machine, &sub, &target, &analysis, &mut frame)
            .expect("runs");
        assert_eq!(frame.scalar(sym("s")).map(Value::as_f64), Some(110.0));
    }

    #[test]
    fn run_loop_matches_across_opt_levels() {
        let src = "
SUBROUTINE t(A, N)
  DIMENSION A(*)
  INTEGER i, N
  DO l1 i = 1, N
    A(i) = A(i) + 3.0
  ENDDO
END
";
        let (machine, sub, target, analysis) = full_setup(src, "l1");
        let run = |opt| {
            let session = Session::builder()
                .backend(crate::Backend::Bytecode)
                .opt_level(opt)
                .nthreads(2)
                .build();
            let mut frame = Store::new();
            frame.set_int(sym("N"), 64);
            frame.alloc_real(sym("A"), 64);
            let stats = session
                .run_loop(&machine, &sub, &target, &analysis, &mut frame)
                .expect("runs");
            let a = frame.array(sym("A")).expect("A");
            let snap: Vec<f64> = (0..64).map(|i| a.get_f64(i)).collect();
            (stats.outcome, stats.test_units, stats.loop_units, snap)
        };
        let unfused = run(crate::backend::OptLevel::None);
        let fused = run(crate::backend::OptLevel::Fuse);
        assert_eq!(unfused, fused);
        assert_eq!(fused.0, ExecOutcome::StaticParallel);
        assert_eq!(fused.3[63], 3.0);
    }

    #[test]
    fn privatized_array_with_last_value() {
        // T is written [1,M] then read each iteration: PRIV; its final
        // content must be iteration N's (static last value).
        let src = "
SUBROUTINE t(A, T, N, M)
  DIMENSION A(*), T(*)
  INTEGER i, j, N, M
  DO l1 i = 1, N
    DO j = 1, M
      T(j) = i + j
    ENDDO
    DO j = 1, M
      A(i) = A(i) + T(j)
    ENDDO
  ENDDO
END
";
        let (machine, sub, target, analysis) = full_setup(src, "l1");
        let (n, m) = (64i64, 8i64);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n).set_int(sym("M"), m);
        frame.alloc_real(sym("A"), n as usize);
        frame.alloc_real(sym("T"), m as usize);
        let stats = session2()
            .run_loop(&machine, &sub, &target, &analysis, &mut frame)
            .expect("runs");
        assert_ne!(stats.outcome, ExecOutcome::Sequential);
        // A(i) = Σ_j (i + j); T's final = last iteration's values.
        let a = frame.array(sym("A")).expect("A");
        for i in 1..=n {
            let expected: f64 = (1..=m).map(|j| (i + j) as f64).sum();
            assert_eq!(a.get_f64((i - 1) as usize), expected, "A({i})");
        }
        let t = frame.array(sym("T")).expect("T");
        for j in 1..=m {
            assert_eq!(t.get_f64((j - 1) as usize), (n + j) as f64, "T({j})");
        }
    }
}
