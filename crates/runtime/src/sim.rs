//! The deterministic cost-model simulator.
//!
//! The paper's evaluation machines (quad-core Xeon, 8×dual-core POWER5)
//! are unavailable; per DESIGN.md, timing figures are regenerated on a
//! *virtual* `P`-processor machine over the interpreter's deterministic
//! work units: sequential time is the summed unit cost, parallel time is
//! the makespan of the block schedule plus a per-region spawn overhead,
//! and runtime tests charge their own units (and/or-reduced across
//! processors, as the paper's generated code evaluates O(N) predicates
//! in parallel). This preserves exactly the *shape* claims the paper
//! makes — speedups, scalability, overhead percentages, and the
//! granularity-induced slowdowns of tiny loops.

use lip_ir::{ExecState, Machine, RunError, Stmt, Store, Subroutine, Value};

use crate::backend::{exec_stmt_seq, machine_tracer, CompiledBody, ExecEnv};
use crate::pool::chunk_bounds;

/// What to simulate for one loop ([`crate::Session::simulate`]): the
/// virtual processor count plus the runtime-test charge. The spawn
/// overhead comes from the session's `spawn_cost` — configuration, not
/// a per-call argument.
#[derive(Copy, Clone, Debug)]
pub struct SimSpec {
    /// Number of virtual processors.
    pub procs: usize,
    /// Sequential cost of the runtime tests (cascade stages evaluated
    /// + CIV slices).
    pub test_seq_units: u64,
    /// Whether the test is and/or-reduced across processors (the
    /// paper's generated code evaluates O(N) predicates in parallel).
    pub parallel_test: bool,
    /// Whether the loop body itself runs in parallel (false: the tests
    /// failed — charge the sequential time).
    pub run_parallel: bool,
}

impl Default for SimSpec {
    fn default() -> SimSpec {
        SimSpec {
            procs: 4,
            test_seq_units: 0,
            parallel_test: false,
            run_parallel: true,
        }
    }
}

/// The simulated timing of one loop execution.
#[derive(Copy, Clone, Debug, Default)]
pub struct SimResult {
    /// Sequential work units of the loop body.
    pub seq_units: u64,
    /// Parallel makespan (block schedule + spawn overhead), excluding
    /// tests.
    pub par_units: u64,
    /// Runtime-test units (already divided across processors where the
    /// test is a parallel and/or-reduction).
    pub test_units: u64,
}

impl SimResult {
    /// Parallel time including tests.
    pub fn par_total(&self) -> u64 {
        self.par_units + self.test_units
    }

    /// Test overhead as a fraction of the parallel runtime (the paper's
    /// RTov column).
    pub fn rt_overhead(&self) -> f64 {
        if self.par_total() == 0 {
            0.0
        } else {
            self.test_units as f64 / self.par_total() as f64
        }
    }

    /// Speedup of the parallel execution over sequential.
    pub fn speedup(&self) -> f64 {
        if self.par_total() == 0 {
            1.0
        } else {
            self.seq_units as f64 / self.par_total() as f64
        }
    }
}

/// Runtime-test units charged on the critical path: small (O(1)-ish)
/// tests run inline; larger ones are and/or-reduced across processors
/// at the price of one extra spawn. This is the single charging rule
/// shared by the simulator and the suite harness, and it mirrors what
/// the `lip_pred` engine actually does at runtime — quantified O(N)
/// stages fork across the pool only past a trip-count threshold
/// (`LIP_PRED_PAR_MIN`), never for tests too small to amortize the
/// fork.
pub fn charged_test_units(test_units: u64, procs: usize, spawn: u64) -> u64 {
    if test_units == 0 {
        0
    } else if test_units <= 4 * spawn {
        test_units
    } else {
        test_units / procs.max(1) as u64 + spawn
    }
}

/// The measurement driver behind
/// [`crate::Session::per_iteration_costs`] (the per-iteration unit
/// figures are identical on both backends; the bytecode backend just
/// produces them faster — this is where the measurement harness spends
/// most of its wall-clock).
pub(crate) fn per_iteration_costs_impl(
    env: &ExecEnv<'_>,
    machine: &Machine,
    sub: &Subroutine,
    target: &Stmt,
    frame: &mut Store,
) -> Result<Vec<u64>, RunError> {
    if env.backend.is_bytecode() {
        if let Some(r) = per_iteration_costs_vm(env, machine, sub, target, frame) {
            return r;
        }
    }
    match target {
        Stmt::Do {
            var, lo, hi, body, ..
        } => {
            let mut state = ExecState::default();
            let lo_v = machine.eval(sub, frame, lo, &mut state)?.as_i64();
            let hi_v = machine.eval(sub, frame, hi, &mut state)?.as_i64();
            let mut costs = Vec::new();
            let mut i = lo_v;
            while i <= hi_v {
                frame.set_scalar(*var, Value::Int(i));
                let before = state.cost;
                machine.exec_block(sub, frame, body, &mut state)?;
                costs.push(state.cost - before);
                i += 1;
            }
            Ok(costs)
        }
        Stmt::While { cond, body, .. } => {
            let mut state = ExecState::default();
            let mut costs = Vec::new();
            loop {
                let c = machine.eval(sub, frame, cond, &mut state)?;
                if !c.truthy() {
                    break;
                }
                let before = state.cost;
                machine.exec_block(sub, frame, body, &mut state)?;
                costs.push(state.cost - before);
                if costs.len() > 100_000_000 {
                    return Err(RunError::StepLimit);
                }
            }
            Ok(costs)
        }
        other => {
            let mut state = ExecState::default();
            machine.exec_stmt(sub, frame, other, &mut state)?;
            Ok(vec![state.cost])
        }
    }
}

/// The VM measurement driver; `None` means "fall back to tree-walk".
fn per_iteration_costs_vm(
    env: &ExecEnv<'_>,
    machine: &Machine,
    sub: &Subroutine,
    target: &Stmt,
    frame: &mut Store,
) -> Option<Result<Vec<u64>, RunError>> {
    match target {
        Stmt::Do {
            var, lo, hi, body, ..
        } => {
            let cb = CompiledBody::new(env.cache, machine, sub, body, &[], &[*var])?;
            Some((|| {
                let mut state = ExecState::default();
                let lo_v = machine.eval(sub, frame, lo, &mut state)?.as_i64();
                let hi_v = machine.eval(sub, frame, hi, &mut state)?.as_i64();
                let vm = cb.vm(machine);
                let var_slot = cb.chunk().scalar_slot(*var).expect("interned");
                let mut f = cb.frame(frame);
                let mut costs = Vec::new();
                let mut i = lo_v;
                while i <= hi_v {
                    f.set_scalar(var_slot, Value::Int(i));
                    let before = state.cost;
                    vm.run_block(cb.block, &mut f, &mut state, machine_tracer(machine))?;
                    costs.push(state.cost - before);
                    i += 1;
                }
                // The driver mutates `frame` so program state stays
                // correct for whatever follows.
                f.writeback_scalars(cb.chunk(), frame);
                Ok(costs)
            })())
        }
        Stmt::While { cond, body, .. } => {
            let cb = CompiledBody::new(env.cache, machine, sub, body, &[cond], &[])?;
            Some((|| {
                let mut state = ExecState::default();
                let vm = cb.vm(machine);
                let mut f = cb.frame(frame);
                let mut costs = Vec::new();
                loop {
                    let c = vm.eval_block_expr(
                        cb.block,
                        0,
                        &mut f,
                        &mut state,
                        machine_tracer(machine),
                    )?;
                    if !c.truthy() {
                        break;
                    }
                    let before = state.cost;
                    vm.run_block(cb.block, &mut f, &mut state, machine_tracer(machine))?;
                    costs.push(state.cost - before);
                    if costs.len() > 100_000_000 {
                        return Err(RunError::StepLimit);
                    }
                }
                f.writeback_scalars(cb.chunk(), frame);
                Ok(costs)
            })())
        }
        other => {
            let mut state = ExecState::default();
            Some(
                exec_stmt_seq(env, machine, sub, other, frame, &mut state)
                    .map(|()| vec![state.cost]),
            )
        }
    }
}

/// Block-scheduled makespan of the per-iteration costs on `procs`
/// processors (same chunking as the real executor).
pub fn makespan(per_iter: &[u64], procs: usize) -> u64 {
    if per_iter.is_empty() {
        return 0;
    }
    let n = per_iter.len() as i64;
    chunk_bounds(procs, 1, n)
        .into_iter()
        .map(|(lo, hi)| {
            per_iter[(lo - 1) as usize..=(hi - 1) as usize]
                .iter()
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use lip_ir::parse_program;
    use lip_symbolic::sym;

    #[test]
    fn makespan_balances_uniform_work() {
        let costs = vec![10u64; 100];
        assert_eq!(makespan(&costs, 4), 250);
        assert_eq!(makespan(&costs, 1), 1000);
        // One fat iteration dominates.
        let mut skewed = vec![1u64; 99];
        skewed.push(1000);
        assert!(makespan(&skewed, 4) >= 1000);
    }

    #[test]
    fn simulation_produces_speedup_for_big_loops() {
        let prog = parse_program(
            "
SUBROUTINE t(A, N)
  DIMENSION A(*)
  INTEGER i, N
  DO l1 i = 1, N
    A(i) = A(i) * 1.5 + 2.0
  ENDDO
END
",
        )
        .expect("parses");
        let sub = prog.units[0].clone();
        let target = sub.find_loop("l1").expect("loop").clone();
        let machine = Machine::new(prog);
        let mut frame = Store::new();
        frame.set_int(sym("N"), 20_000);
        frame.alloc_real(sym("A"), 20_000);
        let r = Session::builder()
            .spawn_cost(1_000)
            .build()
            .simulate(
                &machine,
                &sub,
                &target,
                &mut frame,
                SimSpec {
                    procs: 4,
                    ..SimSpec::default()
                },
            )
            .expect("simulates");
        let s = r.speedup();
        assert!(s > 3.0 && s <= 4.0, "speedup {s}");
    }

    #[test]
    fn tiny_loops_slow_down() {
        // The flo52/ocean effect: granularity too small to amortize the
        // spawn overhead.
        let prog = parse_program(
            "
SUBROUTINE t(A, N)
  DIMENSION A(*)
  INTEGER i, N
  DO l1 i = 1, N
    A(i) = 1.0
  ENDDO
END
",
        )
        .expect("parses");
        let sub = prog.units[0].clone();
        let target = sub.find_loop("l1").expect("loop").clone();
        let machine = Machine::new(prog);
        let mut frame = Store::new();
        frame.set_int(sym("N"), 16);
        frame.alloc_real(sym("A"), 16);
        let r = Session::builder()
            .spawn_cost(4_000)
            .build()
            .simulate(
                &machine,
                &sub,
                &target,
                &mut frame,
                SimSpec {
                    procs: 4,
                    ..SimSpec::default()
                },
            )
            .expect("simulates");
        assert!(r.speedup() < 1.0, "speedup {}", r.speedup());
    }

    #[test]
    fn rt_overhead_accounting() {
        let r = SimResult {
            seq_units: 100_000,
            par_units: 25_000,
            test_units: 250,
        };
        assert!(r.rt_overhead() < 0.01);
        assert!(r.speedup() > 3.9);
    }
}
