//! Execution backend selection: tree-walk interpretation vs. compiled
//! register bytecode.
//!
//! Both backends share one value/runtime model (`lip_ir`'s `Value`,
//! `ArrayBuf`, `AccessTracer`, work-unit accounting), so they are
//! interchangeable everywhere the executor runs loop iterations: the
//! predicate-guarded parallel path, CIV slice precomputation, LRPD
//! speculation and the sequential fallbacks. Outputs, traced access
//! streams and work-unit counts are identical; only wall-clock speed
//! differs.
//!
//! Selection is per-[`crate::Session`]: the builder field
//! `Session::builder().backend(..)`, or the `LIP_BACKEND` environment
//! variable read in exactly one place (`SessionConfig::from_env`,
//! strict parsing). Programs the bytecode compiler cannot handle fall
//! back to tree-walk interpretation transparently.
//!
//! Runtime *predicate* evaluation has its own seam on the same model:
//! [`PredBackend`] (`.pred(PredBackend::Compiled)` for the `lip_pred`
//! engine, tree-walking `Pdag::eval` as the default reference),
//! threaded through the cascade evaluation in `exec` and the suite
//! harness. Verdicts and charged work units are identical on both;
//! only wall-clock differs.

use std::sync::Arc;

use lip_ir::{AccessTracer, ExecState, Expr, Machine, RunError, Stmt, Store, Subroutine};
use lip_symbolic::Sym;
use lip_vm::{Frame, Vm};

use crate::cache::{CachedBody, MachineCache};

pub use lip_pred::PredBackend;
pub use lip_vm::OptLevel;

/// Which execution engine runs loop iterations.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Backend {
    /// The `lip_ir` tree-walk interpreter (the reference semantics).
    #[default]
    TreeWalk,
    /// The `lip_vm` register bytecode VM.
    Bytecode,
}

impl Backend {
    /// Whether this is the bytecode VM.
    pub fn is_bytecode(self) -> bool {
        self == Backend::Bytecode
    }
}

/// Strict parsing for configuration seams (`LIP_BACKEND` is read in
/// exactly one place — [`crate::SessionConfig::from_env`] — and a typo
/// like `bytecoed` is an error there, never a silent fallback to the
/// tree-walk default).
impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Backend, String> {
        if s.eq_ignore_ascii_case("tree") || s.eq_ignore_ascii_case("treewalk") {
            Ok(Backend::TreeWalk)
        } else if s.eq_ignore_ascii_case("bytecode") || s.eq_ignore_ascii_case("vm") {
            Ok(Backend::Bytecode)
        } else {
            Err(format!(
                "unknown backend `{s}` (expected `tree`/`treewalk` or `bytecode`/`vm`)"
            ))
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::TreeWalk => write!(f, "treewalk"),
            Backend::Bytecode => write!(f, "bytecode"),
        }
    }
}

/// Everything one executor entry point needs beyond the loop itself:
/// the session's per-machine compile cache plus the configured seams.
/// Built by [`crate::Session`] per call and threaded through the
/// internal drivers, replacing what used to be a trailing
/// `(nthreads, backend, pred)` argument sprawl.
pub(crate) struct ExecEnv<'a> {
    /// The session's compile/predicate cache for the machine at hand.
    pub cache: &'a MachineCache,
    /// Which engine runs loop iterations.
    pub backend: Backend,
    /// Which engine evaluates runtime predicates.
    pub pred: PredBackend,
    /// Fork-join pool width.
    pub nthreads: usize,
    /// The session's observability handle (decision recording, pool
    /// events, dispatch counters; disabled = one branch per check).
    pub obs: &'a lip_obs::Obs,
}

/// A loop body (or statement block) compiled for VM execution: the
/// whole program (for CALLs out of the block) plus the block itself.
/// Backed by the session's per-machine [`crate::cache::MachineCache`],
/// so a given block shape compiles once per machine no matter how many
/// times `Session::run_loop`, CIV slicing or LRPD construct it.
pub(crate) struct CompiledBody {
    body: Arc<CachedBody>,
    pub block: lip_vm::BlockId,
}

impl CompiledBody {
    /// Fetches (or compiles on first use) `stmts` in `sub`'s context
    /// plus attached expression fragments; `None` means "fall back to
    /// tree-walk".
    pub fn new(
        cache: &MachineCache,
        machine: &Machine,
        sub: &Subroutine,
        stmts: &[Stmt],
        exprs: &[&Expr],
        extra: &[Sym],
    ) -> Option<CompiledBody> {
        let body = cache.body(machine, sub, stmts, exprs, extra)?;
        let block = body.block;
        Some(CompiledBody { body, block })
    }

    /// The block chunk (slot lookups, frame construction).
    pub fn chunk(&self) -> &lip_vm::Chunk {
        &self.body.prog.block(self.block).chunk
    }

    /// A frame over the block resolved from `store`.
    pub fn frame(&self, store: &Store) -> Frame {
        Frame::for_chunk(self.chunk(), store)
    }

    /// A VM delivering `machine`'s READ inputs.
    pub fn vm<'p>(&'p self, machine: &'p Machine) -> Vm<'p> {
        Vm::for_machine(&self.body.prog, machine)
    }
}

/// The machine's own tracer as a trait object (VM paths must honor the
/// same instrumentation `Machine::with_tracer` installs).
pub(crate) fn machine_tracer(machine: &Machine) -> Option<&dyn AccessTracer> {
    machine.tracer().map(|t| &**t as &dyn AccessTracer)
}

/// Executes one statement sequentially under the selected backend
/// (used for sequential loop fallbacks and LRPD recovery re-runs).
pub(crate) fn exec_stmt_seq(
    env: &ExecEnv<'_>,
    machine: &Machine,
    sub: &Subroutine,
    target: &Stmt,
    frame: &mut Store,
    state: &mut ExecState,
) -> Result<(), RunError> {
    if env.backend.is_bytecode() {
        if let Some(cb) = CompiledBody::new(
            env.cache,
            machine,
            sub,
            std::slice::from_ref(target),
            &[],
            &[],
        ) {
            let mut f = cb.frame(frame);
            if env.obs.trace_enabled() {
                let mut dc = lip_vm::DispatchCounts::default();
                cb.vm(machine).run_block_counting(
                    cb.block,
                    &mut f,
                    state,
                    machine_tracer(machine),
                    &mut dc,
                )?;
                env.obs.count("vm.ops", dc.ops);
                env.obs.count("vm.fused_ops", dc.fused_ops);
            } else {
                cb.vm(machine)
                    .run_block(cb.block, &mut f, state, machine_tracer(machine))?;
            }
            f.writeback_scalars(cb.chunk(), frame);
            return Ok(());
        }
    }
    machine.exec_stmt(sub, frame, target, state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses_strictly() {
        assert_eq!(Backend::default(), Backend::TreeWalk);
        assert!(Backend::Bytecode.is_bytecode());
        assert_eq!(Backend::Bytecode.to_string(), "bytecode");
        assert_eq!("treewalk".parse::<Backend>(), Ok(Backend::TreeWalk));
        assert_eq!("VM".parse::<Backend>(), Ok(Backend::Bytecode));
        assert_eq!("Bytecode".parse::<Backend>(), Ok(Backend::Bytecode));
        // A typo must be an error, not a silent tree-walk fallback.
        let err = "bytecoed".parse::<Backend>().unwrap_err();
        assert!(err.contains("bytecoed"), "{err}");
        assert!("".parse::<Backend>().is_err());
    }

    #[test]
    fn exec_stmt_seq_matches_interpreter() {
        let prog = lip_ir::parse_program(
            "
SUBROUTINE t(A, N)
  DIMENSION A(*)
  INTEGER i, N
  DO l1 i = 1, N
    A(i) = A(i) * 2.0 + 1.0
  ENDDO
END
",
        )
        .expect("parses");
        let sub = prog.units[0].clone();
        let target = sub.find_loop("l1").expect("loop").clone();
        let machine = Machine::new(prog);
        let mk = || {
            let mut s = Store::new();
            s.set_int(lip_symbolic::sym("N"), 50);
            let a = s.alloc_real(lip_symbolic::sym("A"), 50);
            for i in 0..50 {
                a.set(i, lip_ir::Value::Real(i as f64));
            }
            s
        };
        let cache = MachineCache::default();
        let obs = lip_obs::Obs::off();
        let env_for = |backend| ExecEnv {
            cache: &cache,
            backend,
            pred: PredBackend::Tree,
            nthreads: 1,
            obs: &obs,
        };
        let mut tw = mk();
        let mut st_tw = ExecState::default();
        exec_stmt_seq(
            &env_for(Backend::TreeWalk),
            &machine,
            &sub,
            &target,
            &mut tw,
            &mut st_tw,
        )
        .expect("tree-walk");
        let mut bc = mk();
        let mut st_bc = ExecState::default();
        exec_stmt_seq(
            &env_for(Backend::Bytecode),
            &machine,
            &sub,
            &target,
            &mut bc,
            &mut st_bc,
        )
        .expect("bytecode");
        assert_eq!(st_tw.cost, st_bc.cost);
        let (a, b) = (
            tw.array(lip_symbolic::sym("A")).expect("A"),
            bc.array(lip_symbolic::sym("A")).expect("A"),
        );
        for i in 0..50 {
            assert_eq!(a.get_f64(i), b.get_f64(i), "element {i}");
        }
    }
}
