//! Execution backend selection: tree-walk interpretation vs. compiled
//! register bytecode.
//!
//! Both backends share one value/runtime model (`lip_ir`'s `Value`,
//! `ArrayBuf`, `AccessTracer`, work-unit accounting), so they are
//! interchangeable everywhere the executor runs loop iterations: the
//! predicate-guarded parallel path, CIV slice precomputation, LRPD
//! speculation and the sequential fallbacks. Outputs, traced access
//! streams and work-unit counts are identical; only wall-clock speed
//! differs.
//!
//! Selection is explicit (the `*_with` executor entry points) or via
//! the `LIP_BACKEND` environment variable (`bytecode`/`vm` picks the
//! VM; anything else tree-walks). Programs the bytecode compiler
//! cannot handle fall back to tree-walk interpretation transparently.
//!
//! Runtime *predicate* evaluation has its own seam on the same model:
//! [`PredBackend`] (`LIP_PRED=compiled` for the `lip_pred` engine,
//! tree-walking `Pdag::eval` as the default reference), threaded
//! through the cascade evaluation in `exec` and the suite harness.
//! Verdicts and charged work units are identical on both; only
//! wall-clock differs.

use std::sync::Arc;

use lip_ir::{AccessTracer, ExecState, Expr, Machine, RunError, Stmt, Store, Subroutine};
use lip_symbolic::Sym;
use lip_vm::{Frame, Vm};

use crate::cache::{machine_cache, CachedBody};

pub use lip_pred::PredBackend;

/// Which execution engine runs loop iterations.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Backend {
    /// The `lip_ir` tree-walk interpreter (the reference semantics).
    #[default]
    TreeWalk,
    /// The `lip_vm` register bytecode VM.
    Bytecode,
}

impl Backend {
    /// Reads `LIP_BACKEND` (`bytecode` or `vm`, case-insensitive, for
    /// the VM; default tree-walk).
    pub fn from_env() -> Backend {
        match std::env::var("LIP_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("bytecode") || v.eq_ignore_ascii_case("vm") => {
                Backend::Bytecode
            }
            _ => Backend::TreeWalk,
        }
    }

    /// Whether this is the bytecode VM.
    pub fn is_bytecode(self) -> bool {
        self == Backend::Bytecode
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::TreeWalk => write!(f, "treewalk"),
            Backend::Bytecode => write!(f, "bytecode"),
        }
    }
}

/// A loop body (or statement block) compiled for VM execution: the
/// whole program (for CALLs out of the block) plus the block itself.
/// Backed by the per-machine [`crate::cache::MachineCache`], so a given
/// block shape compiles once per machine no matter how many times
/// `run_loop_with`, CIV slicing or LRPD construct it.
pub(crate) struct CompiledBody {
    body: Arc<CachedBody>,
    pub block: lip_vm::BlockId,
}

impl CompiledBody {
    /// Fetches (or compiles on first use) `stmts` in `sub`'s context
    /// plus attached expression fragments; `None` means "fall back to
    /// tree-walk".
    pub fn new(
        machine: &Machine,
        sub: &Subroutine,
        stmts: &[Stmt],
        exprs: &[&Expr],
        extra: &[Sym],
    ) -> Option<CompiledBody> {
        let body = machine_cache(machine).body(machine, sub, stmts, exprs, extra)?;
        let block = body.block;
        Some(CompiledBody { body, block })
    }

    /// The block chunk (slot lookups, frame construction).
    pub fn chunk(&self) -> &lip_vm::Chunk {
        &self.body.prog.block(self.block).chunk
    }

    /// A frame over the block resolved from `store`.
    pub fn frame(&self, store: &Store) -> Frame {
        Frame::for_chunk(self.chunk(), store)
    }

    /// A VM delivering `machine`'s READ inputs.
    pub fn vm<'p>(&'p self, machine: &'p Machine) -> Vm<'p> {
        Vm::for_machine(&self.body.prog, machine)
    }
}

/// The machine's own tracer as a trait object (VM paths must honor the
/// same instrumentation `Machine::with_tracer` installs).
pub(crate) fn machine_tracer(machine: &Machine) -> Option<&dyn AccessTracer> {
    machine.tracer().map(|t| &**t as &dyn AccessTracer)
}

/// Executes one statement sequentially under the selected backend
/// (used for sequential loop fallbacks and LRPD recovery re-runs).
pub(crate) fn exec_stmt_seq(
    machine: &Machine,
    sub: &Subroutine,
    target: &Stmt,
    frame: &mut Store,
    state: &mut ExecState,
    backend: Backend,
) -> Result<(), RunError> {
    if backend.is_bytecode() {
        if let Some(cb) = CompiledBody::new(machine, sub, std::slice::from_ref(target), &[], &[]) {
            let mut f = cb.frame(frame);
            cb.vm(machine)
                .run_block(cb.block, &mut f, state, machine_tracer(machine))?;
            f.writeback_scalars(cb.chunk(), frame);
            return Ok(());
        }
    }
    machine.exec_stmt(sub, frame, target, state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_selection() {
        // Not exercised via set_var (tests run multi-threaded); the
        // parsing itself is what matters.
        assert_eq!(Backend::default(), Backend::TreeWalk);
        assert!(Backend::Bytecode.is_bytecode());
        assert_eq!(Backend::Bytecode.to_string(), "bytecode");
    }

    #[test]
    fn exec_stmt_seq_matches_interpreter() {
        let prog = lip_ir::parse_program(
            "
SUBROUTINE t(A, N)
  DIMENSION A(*)
  INTEGER i, N
  DO l1 i = 1, N
    A(i) = A(i) * 2.0 + 1.0
  ENDDO
END
",
        )
        .expect("parses");
        let sub = prog.units[0].clone();
        let target = sub.find_loop("l1").expect("loop").clone();
        let machine = Machine::new(prog);
        let mk = || {
            let mut s = Store::new();
            s.set_int(lip_symbolic::sym("N"), 50);
            let a = s.alloc_real(lip_symbolic::sym("A"), 50);
            for i in 0..50 {
                a.set(i, lip_ir::Value::Real(i as f64));
            }
            s
        };
        let mut tw = mk();
        let mut st_tw = ExecState::default();
        exec_stmt_seq(
            &machine,
            &sub,
            &target,
            &mut tw,
            &mut st_tw,
            Backend::TreeWalk,
        )
        .expect("tree-walk");
        let mut bc = mk();
        let mut st_bc = ExecState::default();
        exec_stmt_seq(
            &machine,
            &sub,
            &target,
            &mut bc,
            &mut st_bc,
            Backend::Bytecode,
        )
        .expect("bytecode");
        assert_eq!(st_tw.cost, st_bc.cost);
        let (a, b) = (
            tw.array(lip_symbolic::sym("A")).expect("A"),
            bc.array(lip_symbolic::sym("A")).expect("A"),
        );
        for i in 0..50 {
            assert_eq!(a.get_f64(i), b.get_f64(i), "element {i}");
        }
    }
}
