//! The predicate-engine seam end to end: sessions pinning different
//! `PredBackend`s must produce identical outcomes, charged test units
//! and program state across the cascade-pass, cascade-fail and
//! exact-USR-fallback paths — and the session-owned caches must make
//! repeat invocations cheap.

use lip_analysis::{analyze_loop, AnalysisConfig, LoopAnalysis};
use lip_ir::{parse_program, Machine, Stmt, Store, Value};
use lip_runtime::{Backend, ExecOutcome, PredBackend, Session};
use lip_symbolic::sym;

fn setup(src: &str, label: &str) -> (Machine, lip_ir::Subroutine, Stmt, LoopAnalysis) {
    let prog = parse_program(src).expect("parses");
    let sub = prog.units[0].clone();
    let target = sub.find_loop(label).expect("loop").clone();
    let analysis =
        analyze_loop(&prog, sub.name, label, &AnalysisConfig::default()).expect("analyzed");
    (Machine::new(prog), sub, target, analysis)
}

fn session(backend: Backend, pred: PredBackend) -> Session {
    Session::builder()
        .nthreads(2)
        .backend(backend)
        .pred(pred)
        .build()
}

const OFFSET_SRC: &str = "
SUBROUTINE t(A, N, M)
  DIMENSION A(*)
  INTEGER i, N, M
  DO l1 i = 1, N
    A(i) = A(i + M) + 1.0
  ENDDO
END
";

fn offset_frame(n: i64, m: i64) -> Store {
    let mut frame = Store::new();
    frame.set_int(sym("N"), n).set_int(sym("M"), m);
    let len = (n + n.max(m) + 1) as usize;
    let a = frame.alloc_real(sym("A"), len);
    for i in 0..len {
        a.set(i, Value::Real(i as f64));
    }
    frame
}

/// Runs one analyzed loop under both predicate backends (one session
/// each) and asserts stats and final state agree element for element.
fn assert_backends_agree(
    machine: &Machine,
    sub: &lip_ir::Subroutine,
    target: &Stmt,
    analysis: &LoopAnalysis,
    mk_frame: impl Fn() -> Store,
) -> ExecOutcome {
    let mut tree_frame = mk_frame();
    let tree = session(Backend::TreeWalk, PredBackend::Tree)
        .run_loop(machine, sub, target, analysis, &mut tree_frame)
        .expect("tree runs");
    let mut comp_frame = mk_frame();
    let comp = session(Backend::TreeWalk, PredBackend::Compiled)
        .run_loop(machine, sub, target, analysis, &mut comp_frame)
        .expect("compiled runs");
    assert_eq!(tree.outcome, comp.outcome);
    assert_eq!(tree.test_units, comp.test_units, "charged units diverged");
    assert_eq!(tree.loop_units, comp.loop_units);
    for (name, view) in tree_frame.arrays() {
        let other = comp_frame.array(name).expect("array bound on both");
        for i in 0..view.buf.len() {
            assert_eq!(
                view.buf.get_f64(i),
                other.buf.get_f64(i),
                "{name}({i}) diverged"
            );
        }
    }
    comp.outcome
}

#[test]
fn predicate_pass_and_fail_agree_across_backends() {
    let (machine, sub, target, analysis) = setup(OFFSET_SRC, "l1");
    // M >= N: the cascade passes.
    let out = assert_backends_agree(&machine, &sub, &target, &analysis, || {
        offset_frame(400, 400)
    });
    assert!(matches!(out, ExecOutcome::PredicatePassed { .. }));
    // M = 1: the cascade fails, sequential execution.
    let out = assert_backends_agree(&machine, &sub, &target, &analysis, || offset_frame(400, 1));
    assert_eq!(out, ExecOutcome::Sequential);
}

#[test]
fn exact_usr_fallback_reports_its_own_outcome() {
    // A(P(i)) = A(Q(i)) + 1: no cascade stage can decide (the index
    // arrays are opaque), but the hoisted exact USR evaluation proves
    // the sets disjoint on this workload (paper §5's last resort).
    let src = "
SUBROUTINE run20(A, P, Q, N)
  DIMENSION A(*)
  INTEGER P(*), Q(*)
  INTEGER i, N
  DO do20 i = 1, N
    A(P(i)) = A(Q(i)) + 1.0
  ENDDO
END
";
    let (machine, sub, target, analysis) = setup(src, "do20");
    let n = 96i64;
    let mk_frame = || {
        let mut frame = Store::new();
        frame.set_int(sym("N"), n);
        frame.alloc_real(sym("A"), (2 * n + 1) as usize);
        let p = frame.alloc_int(sym("P"), n as usize);
        let q = frame.alloc_int(sym("Q"), n as usize);
        for i in 0..n {
            p.set(i as usize, Value::Int(i + 1));
            q.set(i as usize, Value::Int(i + n + 1)); // disjoint from P
        }
        frame
    };
    let out = assert_backends_agree(&machine, &sub, &target, &analysis, mk_frame);
    assert_eq!(out, ExecOutcome::ExactPredicatePassed);
}

#[test]
fn repeat_invocations_hit_the_session_caches() {
    let (machine, sub, target, analysis) = setup(OFFSET_SRC, "l1");
    let sess = session(Backend::Bytecode, PredBackend::Compiled);
    let run = |sess: &Session| {
        let mut frame = offset_frame(256, 256);
        sess.run_loop(&machine, &sub, &target, &analysis, &mut frame)
            .expect("runs")
    };
    let first = run(&sess);
    let engine = sess.cache(&machine);
    let stats_after_first = engine.pred().stats();
    let second = run(&sess);
    let stats_after_second = engine.pred().stats();
    assert_eq!(first.outcome, second.outcome);
    assert_eq!(first.test_units, second.test_units);
    assert_eq!(
        stats_after_first.compiles, stats_after_second.compiles,
        "second invocation must not recompile predicates"
    );
    assert!(
        stats_after_second.memo_hits > stats_after_first.memo_hits,
        "unchanged inputs must memo-hit"
    );
    assert_eq!(stats_after_second.evals, stats_after_first.evals);
}

#[test]
fn sessions_do_not_share_predicate_state() {
    // A fresh session must start cold even after another session ran
    // the same machine: caches are session-owned, not process-global.
    let (machine, sub, target, analysis) = setup(OFFSET_SRC, "l1");
    let warm = session(Backend::Bytecode, PredBackend::Compiled);
    let mut frame = offset_frame(128, 128);
    warm.run_loop(&machine, &sub, &target, &analysis, &mut frame)
        .expect("runs");
    assert!(warm.cache(&machine).pred().stats().compiles > 0);
    let cold = session(Backend::Bytecode, PredBackend::Compiled);
    assert_eq!(
        cold.cache(&machine).pred().stats().compiles,
        0,
        "a fresh session must own a fresh predicate engine"
    );
}
