//! Charge-accounting invariants across opt levels: the peephole pass
//! folds `Charge` ops into superinstructions, so the one thing it must
//! never change is what gets charged. Every figure the repo reproduces
//! is denominated in work units, so per-iteration costs, test units
//! and loop units have to be bit-identical whether the session runs
//! tree-walk, raw bytecode, or fused bytecode.

use lip_ir::{parse_program, Machine, Store, Value};
use lip_runtime::{Backend, OptLevel, Session};
use lip_symbolic::sym;

/// `(backend, opt_level)` legs that must all agree. Tree-walk ignores
/// the opt level by construction but runs at both settings anyway —
/// the knob must be inert there.
fn legs() -> Vec<(Backend, OptLevel)> {
    vec![
        (Backend::TreeWalk, OptLevel::None),
        (Backend::TreeWalk, OptLevel::Fuse),
        (Backend::Bytecode, OptLevel::None),
        (Backend::Bytecode, OptLevel::Fuse),
    ]
}

fn session(backend: Backend, opt: OptLevel) -> Session {
    Session::builder()
        .backend(backend)
        .opt_level(opt)
        .nthreads(2)
        .build()
}

/// A kernel that exercises most fusion rules per iteration: indexed
/// RMW (both constant and scalar operands), scalar reductions, an
/// inner loop, and a conditional.
const SRC: &str = "
SUBROUTINE t(A, W, N, M)
  DIMENSION A(*), W(*)
  INTEGER i, j, N, M
  s = 0.0
  DO l1 i = 1, N
    A(i) = A(i) + 0.5
    A(i) = A(i) * x
    DO j = 1, M
      W(j) = A(i) * 0.25 + j
    ENDDO
    IF (A(i) .GT. 2.0) THEN
      s = s + A(i)
    ENDIF
  ENDDO
END
";

fn prepared(n: i64, m: i64) -> (Machine, lip_ir::Subroutine, lip_ir::Stmt, Store) {
    let prog = parse_program(SRC).expect("parses");
    let sub = prog.units[0].clone();
    let target = sub.find_loop("l1").expect("loop").clone();
    let machine = Machine::new(prog);
    let mut frame = Store::new();
    frame.set_int(sym("N"), n).set_int(sym("M"), m);
    frame.set_scalar(sym("x"), Value::Real(1.5));
    frame.set_scalar(sym("s"), Value::Real(0.0));
    let a = frame.alloc_real(sym("A"), n as usize);
    for i in 0..n as usize {
        a.set(i, Value::Real(i as f64));
    }
    frame.alloc_real(sym("W"), m as usize);
    (machine, sub, target, frame)
}

#[test]
fn per_iteration_costs_identical_at_every_opt_level() {
    let mut reference: Option<Vec<u64>> = None;
    for (backend, opt) in legs() {
        let (machine, sub, target, mut frame) = prepared(48, 6);
        let costs = session(backend, opt)
            .per_iteration_costs(&machine, &sub, &target, &mut frame)
            .expect("costs");
        assert_eq!(costs.len(), 48, "({backend}, {opt})");
        match &reference {
            None => reference = Some(costs),
            Some(r) => assert_eq!(r, &costs, "({backend}, {opt}) diverged"),
        }
    }
}

#[test]
fn run_loop_stats_and_frames_identical_at_every_opt_level() {
    let mut reference = None;
    for (backend, opt) in legs() {
        let (machine, sub, target, mut frame) = prepared(64, 4);
        let sess = session(backend, opt);
        let analysis = sess
            .analyze(machine.program(), sub.name, "l1")
            .expect("analysis");
        let stats = sess
            .run_loop(&machine, &sub, &target, &analysis, &mut frame)
            .expect("runs");
        let a = frame.array(sym("A")).expect("A");
        let snap: Vec<u64> = (0..64).map(|i| a.get_f64(i).to_bits()).collect();
        let row = (
            format!("{:?}", stats.outcome),
            stats.test_units,
            stats.loop_units,
            frame.scalar(sym("s")).map(|v| v.as_f64().to_bits()),
            snap,
        );
        match &reference {
            None => reference = Some(row),
            Some(r) => assert_eq!(r, &row, "({backend}, {opt}) diverged"),
        }
    }
}

/// The fused stream must charge exactly like the unfused one even when
/// a budget trips mid-loop: same error, same point, same accumulated
/// cost (charge folding moves charges onto fused ops but never merges
/// or reorders them).
#[test]
fn budget_trips_identically_on_fused_and_unfused_streams() {
    let prog = parse_program(SRC).expect("parses");
    let mut compiled = lip_vm::compile_program(&prog).expect("compiles");
    let mut fused = compiled.clone();
    lip_vm::optimize_program(&mut fused);
    // Entry is the whole subroutine; run with a budget that trips
    // mid-iteration.
    compiled.entry = Some(0);
    fused.entry = Some(0);
    let run = |cp: &lip_vm::CompiledProgram| {
        let mut store = Store::new();
        store.set_int(sym("N"), 32).set_int(sym("M"), 4);
        store.set_scalar(sym("x"), Value::Real(1.5));
        store.alloc_real(sym("A"), 32);
        store.alloc_real(sym("W"), 4);
        let mut state = lip_ir::ExecState::with_budget(500);
        let r = lip_vm::Vm::new(cp).run_with_state(&mut store, &mut state, None);
        (r, state.cost)
    };
    let (ru, cu) = run(&compiled);
    let (rf, cf) = run(&fused);
    assert_eq!(ru, rf, "error diverged");
    assert_eq!(cu, cf, "trip-point cost diverged");
    assert_eq!(ru, Err(lip_ir::RunError::StepLimit));
}
