//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest's API that the `lip` test suites
//! use: integer-range and `collection::vec` strategies, `Just` and
//! `prop_map`, the `proptest!` test-harness macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` / `prop_assume!`
//! macros. Generation is driven by a deterministic splitmix64 RNG
//! seeded from the test name, so failures are reproducible run-to-run.
//! There is no shrinking: a failing case reports the concrete inputs
//! that triggered it.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything the `proptest!` tests need in scope.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares a block of property tests.
///
/// Supports the shape used across this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(512))]
///     #[test]
///     fn my_prop(a in -5i64..5, xs in proptest::collection::vec(0i64..9, 1..4)) {
///         prop_assert!(a < 5);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(20).max(1024) {
                        panic!(
                            "proptest `{}`: too many rejected cases ({} accepted of {} attempts)",
                            stringify!($name), ran, attempts
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            let inputs: ::std::string::String = [
                                $(format!("  {} = {:?}", stringify!($arg), &$arg)),*
                            ].join("\n");
                            panic!(
                                "proptest `{}` failed at case {}:\n{}\ninputs:\n{}",
                                stringify!($name), ran, msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (it is regenerated, not counted) unless
/// the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
