//! Collection strategies: `vec(element, len_range)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Acceptable length specifications for [`vec()`], mirroring proptest's
/// `Into<SizeRange>` bound for the common literal shapes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    let size = size.into();
    assert!(size.lo < size.hi_exclusive, "empty vec length range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
