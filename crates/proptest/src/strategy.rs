//! The `Strategy` trait and the primitive strategies the suites use:
//! integer ranges (half-open and inclusive), `Just`, `bool`, and the
//! `prop_map` combinator.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values. Unlike real proptest there is no
/// shrinking machinery: `generate` draws one value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        assert!(lo < hi, "empty char range strategy");
        loop {
            let v = lo + rng.below((hi - lo) as u64) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        // Mirrors proptest's `bool::ANY`-style usage: `true` as a
        // strategy means "any bool".
        rng.below(2) == 1
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = rng.below(span as u64) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let off = rng.below(span as u64) as i128;
                ((*self.start() as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
