//! Configuration, error type and deterministic RNG for the test harness.

/// Mirror of proptest's `ProptestConfig`: only the `cases` knob is
/// honoured here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert!`-style failure with its message.
    Fail(String),
    /// A `prop_assume!` rejection; the case is regenerated.
    Reject,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "rejected by prop_assume!"),
        }
    }
}

/// Deterministic splitmix64 generator. Each property seeds one from its
/// own name, so a failure reproduces on every run without a seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-strategy scales.
        self.next_u64() % bound
    }
}
