//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` prints one table or figure:
//! `table1`/`table2`/`table3` reproduce the per-benchmark property
//! tables; `fig10`–`fig12` the normalized parallel timings against the
//! static-affine baseline; `fig13` the 1–16 processor scalability.

use lip_runtime::Session;
use lip_suite::{measure_benchmark, BenchDef, KernelShape};

pub mod sentry;

/// Spawn overhead (work units) used across all harnesses.
pub const SPAWN: u64 = 3_000;

/// The session every table/figure binary runs through: configured
/// from the `LIP_*` environment (read once, strictly, in
/// `SessionConfig::from_env`) — invalid values abort with a clear
/// message instead of silently falling back.
pub fn harness_session() -> Session {
    match Session::from_env() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid LIP_* environment: {e}");
            std::process::exit(2);
        }
    }
}

/// The hot suite kernels (and their problem sizes) used by the
/// interp-vs-VM dispatch measurements (`benches/vm_dispatch.rs` and
/// the `bench_vm` binary): shapes safe to re-execute arbitrarily often
/// on the same frame — no CIV growth, no input dependence.
pub fn vm_hot_kernels() -> Vec<(&'static KernelShape, usize)> {
    vec![
        (&lip_suite::STENCIL, 1024),
        (&lip_suite::OFFSET_CROSSOVER, 1024),
        (&lip_suite::PRIVATE_SCRATCH, 256),
        (&lip_suite::INDEX_REDUCTION, 512),
        (&lip_suite::STATIC_REDUCTION, 512),
        (&lip_suite::INT_HISTOGRAM, 512),
        (&lip_suite::SEQ_RECURRENCE, 1024),
    ]
}

/// The suite kernels whose cascades contain a quantified O(N) stage
/// that actually iterates on the prepared workload (the O(N) stages of
/// `offset_crossover`, `tls_feedback` and `civ_conditional` decide in
/// O(1) there via an invariant disjunct, so timing them measures
/// setup, not the scan), with the problem sizes used by the
/// predicate-evaluation timings in `bench_vm` (tree-walk `Pdag::eval`
/// vs the `lip_pred` engine, sequential and chunk-parallel).
pub fn pred_kernels() -> Vec<(&'static KernelShape, usize)> {
    vec![
        (&lip_suite::SOLVH, 2048),
        (&lip_suite::MONOTONE_WINDOWS, 8192),
        (&lip_suite::HOIST_INDIRECT, 16384),
        (&lip_suite::EXT_REDUCTION, 16384),
    ]
}

/// The kernels (and problem sizes) for the loop-fission rescue
/// measurements in `bench_vm`. Sizes are moderate on purpose: both
/// the fissioned and the fully sequential leg hoist and exactly
/// evaluate an indirect-access USR whose evaluation cost grows
/// superlinearly with the array size, and the comparison needs
/// several samples per leg. Kernels without a fission plan (solvh's
/// cascade rescues the whole loop before distribution is considered)
/// are listed so the bench keeps probing them and reports the moment
/// a classification change hands them a plan.
pub fn fission_kernels() -> Vec<(&'static KernelShape, usize)> {
    vec![
        (&lip_suite::HOIST_INDIRECT, 1024),
        (&lip_suite::SOLVH, 1024),
    ]
}

/// Renders one paper-style table for a suite.
pub fn print_table(session: &Session, title: &str, defs: &[BenchDef]) {
    println!("== {title} ==");
    println!(
        "{:<11} {:>5} {:>6} {:>7} | {:<18} {:>7} {:>9} {:<26} {:<26}",
        "BENCH", "SC%", "SCrt%", "RTov%", "LOOP", "LSC%", "GRAIN", "CLASSIFIED", "PAPER"
    );
    for def in defs {
        let t = measure_benchmark(session, def);
        let rtov = (t.rt_overhead(4, SPAWN) * 100.0).max(0.0);
        let scrt = (t.sc_rt() * 100.0).max(0.0);
        let mut first = true;
        for (l, d) in t.loops.iter().zip(def.loops.iter()) {
            let head = if first {
                format!(
                    "{:<11} {:>5.0} {:>6.1} {:>7.2}",
                    def.name,
                    def.sc * 100.0,
                    scrt,
                    rtov
                )
            } else {
                format!("{:<11} {:>5} {:>6} {:>7}", "", "", "", "")
            };
            first = false;
            println!(
                "{head} | {:<18} {:>7.1} {:>9} {:<26} {:<26}",
                format!("{}_{}", l.shape, l.label),
                d.weight * 100.0,
                l.seq_units(),
                render_class(l),
                d.expected,
            );
        }
        println!(
            "{:<32} techniques: ours [{}] paper [{}]",
            "",
            t.loops
                .iter()
                .flat_map(|l| l.techniques.split(',').map(str::to_owned))
                .filter(|s| !s.is_empty())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
                .join(","),
            def.techniques
        );
    }
}

fn render_class(l: &lip_suite::LoopMeasurement) -> String {
    use lip_analysis::LoopClass;
    match &l.class {
        LoopClass::StaticParallel => "STATIC-PAR".into(),
        LoopClass::StaticSequential => "STATIC-SEQ".into(),
        LoopClass::Predicated {
            first_stage_complexity,
        } => format!(
            "RT O({}){}",
            if *first_stage_complexity == 0 {
                "1".into()
            } else {
                "N".repeat(*first_stage_complexity as usize)
            },
            if l.parallel { " pass" } else { " fail" }
        ),
        LoopClass::NeedsFallback(k) => format!("{k:?}"),
        LoopClass::Fissioned { fragments } => format!("FISSION({fragments})"),
    }
}

/// Renders a Figure 10/11/12-style comparison (normalized parallel
/// time; sequential = 1.0).
pub fn print_figure(
    session: &Session,
    title: &str,
    defs: &[BenchDef],
    procs: usize,
    baseline_name: &str,
) {
    println!("== {title} (P = {procs}; sequential time = 1.0) ==");
    println!(
        "{:<11} {:>14} {:>14} {:>9}",
        "BENCH", "Factorization", baseline_name, "RTov%"
    );
    for def in defs {
        if def.name == "gamess" {
            continue; // not measured in the paper's figures
        }
        let t = measure_benchmark(session, def);
        let seq = t.seq_units() as f64;
        let ours = t.par_units(procs, SPAWN) as f64 / seq;
        let base = t.baseline_units(procs, SPAWN) as f64 / seq;
        println!(
            "{:<11} {:>14.3} {:>14.3} {:>9.2}",
            def.name,
            ours,
            base,
            t.rt_overhead(procs, SPAWN) * 100.0
        );
    }
}

/// Renders the Figure 13-style scalability sweep.
pub fn print_scalability(session: &Session, title: &str, defs: &[BenchDef], procs: &[usize]) {
    println!("== {title} (speedup over sequential) ==");
    print!("{:<11}", "BENCH");
    for p in procs {
        print!(" {:>8}", format!("P={p}"));
    }
    println!();
    for def in defs {
        if def.name == "gamess" {
            continue;
        }
        let t = measure_benchmark(session, def);
        let seq = t.seq_units() as f64;
        print!("{:<11}", def.name);
        for p in procs {
            let s = seq / t.par_units(*p, SPAWN) as f64;
            print!(" {:>8.2}", s);
        }
        println!();
    }
}

/// Average speedup across a suite at `procs` (the abstract's 2.4x/5.4x
/// style aggregate).
pub fn average_speedup(session: &Session, defs: &[BenchDef], procs: usize) -> f64 {
    let mut sum = 0.0;
    let mut n = 0.0;
    for def in defs {
        if def.name == "gamess" {
            continue;
        }
        let t = measure_benchmark(session, def);
        sum += t.seq_units() as f64 / t.par_units(procs, SPAWN) as f64;
        n += 1.0;
    }
    sum / n
}
