//! The bench-regression sentry behind the `bench_check` binary.
//!
//! Compares a fresh `bench_vm` report (`BENCH_vm.json`, schema v3)
//! against a committed baseline and fails loudly on regressions. Two
//! kinds of check:
//!
//! - **strict** — metrics the cost model makes bit-deterministic
//!   (work units, rescued units and fractions, cascade verdicts and
//!   stage indices, fused/unfused op counts) must match the baseline
//!   exactly; any drift is a semantic change, not jitter.
//! - **banded** — wall-clock figures may regress up to a tolerance
//!   (`--wall-tol`, default 20%; CI uses a wider band for shared
//!   runners). Sub-10µs measurements are skipped entirely: at that
//!   scale the timer reads scheduling, not the kernel. Improvements
//!   never fail.
//!
//! The sentry also appends each run to `BENCH_history.jsonl` — one
//! JSON line per run, keyed on the schema-v2 `meta` block plus the git
//! revision — the per-PR perf trajectory (rescued fractions, kernel
//! scaling) the ROADMAP tracks.

use lip_obs::json::Json;

/// Tolerances for the banded checks.
#[derive(Clone, Debug)]
pub struct Tolerances {
    /// Allowed fractional wall-clock regression (0.20 = +20%).
    pub wall_tol: f64,
    /// Allowed fractional drop in within-run speedup ratios.
    pub ratio_tol: f64,
    /// Wall measurements below this (ns) are not band-checked.
    pub min_wall_ns: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            wall_tol: 0.20,
            ratio_tol: 0.40,
            min_wall_ns: 10_000.0,
        }
    }
}

/// One failed check.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which entry failed (`results stencil/bytecode`, …).
    pub what: String,
    /// Human-readable account of expected vs got.
    pub detail: String,
    /// `true` for strict (determinism) checks, `false` for bands.
    pub strict: bool,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            if self.strict { "STRICT" } else { "BAND" },
            self.what,
            self.detail
        )
    }
}

/// Compares `current` against `baseline` (both parsed `BENCH_vm.json`
/// documents) and returns every violated check, strict first.
pub fn compare(current: &Json, baseline: &Json, tol: &Tolerances) -> Vec<Violation> {
    let mut v = Vec::new();
    check_meta(current, baseline, &mut v);
    check_results(current, baseline, tol, &mut v);
    check_fused(current, baseline, tol, &mut v);
    check_reduction(current, baseline, tol, &mut v);
    check_pred(current, baseline, tol, &mut v);
    check_fission(current, baseline, tol, &mut v);
    v.sort_by_key(|x| !x.strict);
    v
}

fn strict(v: &mut Vec<Violation>, what: &str, detail: String) {
    v.push(Violation {
        what: what.to_owned(),
        detail,
        strict: true,
    });
}

fn band(v: &mut Vec<Violation>, what: &str, detail: String) {
    v.push(Violation {
        what: what.to_owned(),
        detail,
        strict: false,
    });
}

/// Finds the entry of `block` whose `keys` fields all match `want`.
fn find_entry<'a>(doc: &'a Json, block: &str, keys: &[(&str, &Json)]) -> Option<&'a Json> {
    doc.get(block)?.as_arr()?.iter().find(|e| {
        keys.iter()
            .all(|(k, want)| e.get(k).map(|got| got == *want).unwrap_or(false))
    })
}

/// Iterates baseline entries of an array block, locating the matching
/// current entry by the values of `key_fields`; a baseline entry with
/// no current counterpart is itself a strict violation (a kernel or
/// backend silently dropped from the bench).
fn for_matched(
    current: &Json,
    baseline: &Json,
    block: &str,
    key_fields: &[&str],
    v: &mut Vec<Violation>,
    mut f: impl FnMut(&str, &Json, &Json, &mut Vec<Violation>),
) {
    let Some(base_entries) = baseline.get(block).and_then(|b| b.as_arr()) else {
        return;
    };
    for base in base_entries {
        let keys: Vec<(&str, &Json)> = key_fields
            .iter()
            .filter_map(|k| base.get(k).map(|val| (*k, val)))
            .collect();
        let label = format!(
            "{block} {}",
            keys.iter()
                .map(|(_, val)| val
                    .as_str()
                    .map(str::to_owned)
                    .unwrap_or(format!("{val:?}")))
                .collect::<Vec<_>>()
                .join("/")
        );
        match find_entry(current, block, &keys) {
            None => strict(v, &label, "entry missing from current run".into()),
            Some(cur) => f(&label, cur, base, v),
        }
    }
}

/// Strict equality of field `k` (numbers, strings, nulls, booleans).
fn check_exact(label: &str, k: &str, cur: &Json, base: &Json, v: &mut Vec<Violation>) {
    let (c, b) = (cur.get(k), base.get(k));
    if c != b {
        strict(v, label, format!("{k}: baseline {b:?}, current {c:?}"));
    }
}

/// Banded wall check on field `k`: only a regression beyond
/// `wall_tol` fails, and only above the measurement floor.
fn check_wall(
    label: &str,
    k: &str,
    cur: &Json,
    base: &Json,
    tol: &Tolerances,
    v: &mut Vec<Violation>,
) {
    let (Some(c), Some(b)) = (
        cur.get(k).and_then(Json::as_f64),
        base.get(k).and_then(Json::as_f64),
    ) else {
        return;
    };
    if b < tol.min_wall_ns || c < tol.min_wall_ns {
        return;
    }
    let limit = b * (1.0 + tol.wall_tol);
    if c > limit {
        band(
            v,
            label,
            format!(
                "{k}: {c:.0} ns vs baseline {b:.0} ns (+{:.1}% > +{:.0}% tolerance)",
                100.0 * (c / b - 1.0),
                100.0 * tol.wall_tol
            ),
        );
    }
}

/// Banded ratio check on field `k`: a drop beyond `ratio_tol` fails,
/// guarded by the wall floor on `wall_field` when given.
fn check_ratio(
    label: &str,
    k: &str,
    wall_field: &str,
    cur: &Json,
    base: &Json,
    tol: &Tolerances,
    v: &mut Vec<Violation>,
) {
    let (Some(c), Some(b)) = (
        cur.get(k).and_then(Json::as_f64),
        base.get(k).and_then(Json::as_f64),
    ) else {
        return;
    };
    if let Some(w) = base.get(wall_field).and_then(Json::as_f64) {
        if w < tol.min_wall_ns {
            return;
        }
    }
    if c < b * (1.0 - tol.ratio_tol) {
        band(
            v,
            label,
            format!(
                "{k}: {c:.3} vs baseline {b:.3} (-{:.1}% > -{:.0}% tolerance)",
                100.0 * (1.0 - c / b),
                100.0 * tol.ratio_tol
            ),
        );
    }
}

fn check_meta(current: &Json, baseline: &Json, v: &mut Vec<Violation>) {
    // A baseline from a different schema or session shape isn't
    // comparable — flag it rather than drowning in spurious diffs.
    for k in [
        "schema_version",
        "nthreads",
        "backend",
        "pred",
        "opt_level",
        "fission",
    ] {
        let (c, b) = (current.path(&["meta", k]), baseline.path(&["meta", k]));
        if c != b {
            strict(v, "meta", format!("{k}: baseline {b:?}, current {c:?}"));
        }
    }
}

fn check_results(current: &Json, baseline: &Json, tol: &Tolerances, v: &mut Vec<Violation>) {
    for_matched(
        current,
        baseline,
        "results",
        &["kernel", "backend"],
        v,
        |label, cur, base, v| {
            check_exact(label, "work_units", cur, base, v);
            check_wall(label, "wall_ns", cur, base, tol, v);
            check_ratio(label, "speedup_vs_treewalk", "wall_ns", cur, base, tol, v);
        },
    );
}

fn check_fused(current: &Json, baseline: &Json, tol: &Tolerances, v: &mut Vec<Violation>) {
    for_matched(
        current,
        baseline,
        "fused_results",
        &["kernel"],
        v,
        |label, cur, base, v| {
            check_exact(label, "ops_unfused", cur, base, v);
            check_exact(label, "ops_fused", cur, base, v);
            check_wall(label, "unfused_wall_ns", cur, base, tol, v);
            check_wall(label, "fused_wall_ns", cur, base, tol, v);
        },
    );
}

fn check_reduction(current: &Json, baseline: &Json, tol: &Tolerances, v: &mut Vec<Violation>) {
    for_matched(
        current,
        baseline,
        "reduction_results",
        &["kernel"],
        v,
        |label, cur, base, v| {
            // The measured shape (size, operator, element type) is
            // part of the row's identity; silently changing it would
            // make the wall bands compare different workloads.
            check_exact(label, "elems", cur, base, v);
            check_exact(label, "op", cur, base, v);
            check_exact(label, "ty", cur, base, v);
            check_wall(label, "boxed_wall_ns", cur, base, tol, v);
            check_wall(label, "simd_wall_ns", cur, base, tol, v);
            check_ratio(
                label,
                "speedup_vs_boxed",
                "boxed_wall_ns",
                cur,
                base,
                tol,
                v,
            );
        },
    );
}

fn check_pred(current: &Json, baseline: &Json, tol: &Tolerances, v: &mut Vec<Violation>) {
    for_matched(
        current,
        baseline,
        "pred_results",
        &["kernel", "backend"],
        v,
        |label, cur, base, v| {
            check_exact(label, "verdict", cur, base, v);
            check_exact(label, "passed_stage", cur, base, v);
            check_exact(label, "failed_stage", cur, base, v);
            check_wall(label, "wall_ns", cur, base, tol, v);
        },
    );
}

fn check_fission(current: &Json, baseline: &Json, tol: &Tolerances, v: &mut Vec<Violation>) {
    for_matched(
        current,
        baseline,
        "fission_results",
        &["kernel"],
        v,
        |label, cur, base, v| {
            check_exact(label, "fragments", cur, base, v);
            check_exact(label, "parallel_fragments", cur, base, v);
            check_exact(label, "rescued_units", cur, base, v);
            check_exact(label, "loop_units", cur, base, v);
            // The rescued fraction is the trajectory metric the ROADMAP
            // tracks: deterministic, so any drop is a real regression.
            let (c, b) = (
                cur.get("rescued_fraction").and_then(Json::as_f64),
                base.get("rescued_fraction").and_then(Json::as_f64),
            );
            if let (Some(c), Some(b)) = (c, b) {
                if c < b - 1e-9 {
                    strict(
                        v,
                        label,
                        format!("rescued_fraction regressed: {c:.3} vs baseline {b:.3}"),
                    );
                }
            }
            check_wall(label, "fissioned_wall_ns", cur, base, tol, v);
            check_wall(label, "sequential_wall_ns", cur, base, tol, v);
        },
    );
}

/// Sanity-validates a `BENCH_serve.json` document (schema v1): the
/// `meta` block names the serve bench, both legs are present with
/// positive throughput and ordered quantiles, cache-hit rates are
/// rates, and the warm leg is not slower than the cold leg it is
/// supposed to amortize. There is no baseline comparison — serve
/// throughput is machine-bound — so every violation here is a malformed
/// or self-contradictory report, and strict.
pub fn validate_serve(doc: &Json) -> Vec<Violation> {
    let mut v = Vec::new();
    if doc.path(&["meta", "bench"]).and_then(Json::as_str) != Some("serve") {
        strict(
            &mut v,
            "meta",
            "missing `\"bench\": \"serve\"` marker".into(),
        );
    }
    let legs = doc.get("legs").and_then(Json::as_arr).unwrap_or(&[]);
    for name in ["cold", "warm"] {
        let Some(leg) = legs
            .iter()
            .find(|l| l.get("leg").and_then(Json::as_str) == Some(name))
        else {
            strict(&mut v, name, "leg missing from report".into());
            continue;
        };
        let num = |k: &str| leg.get(k).and_then(Json::as_f64);
        match num("throughput_rps") {
            Some(t) if t > 0.0 => {}
            other => strict(
                &mut v,
                name,
                format!("throughput_rps not positive: {other:?}"),
            ),
        }
        match (num("p50_ns"), num("p99_ns")) {
            (Some(p50), Some(p99)) if p50 <= p99 => {}
            other => strict(
                &mut v,
                name,
                format!("p50/p99 missing or inverted: {other:?}"),
            ),
        }
        match num("cache_hit_rate") {
            Some(r) if (0.0..=1.0).contains(&r) => {}
            other => strict(
                &mut v,
                name,
                format!("cache_hit_rate not a rate: {other:?}"),
            ),
        }
    }
    match doc.get("warm_over_cold_throughput").and_then(Json::as_f64) {
        Some(r) if r >= 1.0 => {}
        Some(r) => strict(
            &mut v,
            "warm_over_cold_throughput",
            format!("warm leg slower than cold ({r:.3}x) — caching amortizes nothing"),
        ),
        None => strict(&mut v, "warm_over_cold_throughput", "field missing".into()),
    }
    v
}

/// One `BENCH_history.jsonl` line for a serve run: git revision, the
/// `meta` block verbatim, both legs verbatim, and the warm/cold ratio.
/// Distinguished from `bench_vm` lines by `"bench": "serve"`.
pub fn serve_history_line(doc: &Json, rev: &str, unix_secs: u64) -> String {
    format!(
        "{{\"rev\": \"{}\", \"unix_secs\": {unix_secs}, \"bench\": \"serve\", \"meta\": {}, \
         \"legs\": {}, \"warm_over_cold_throughput\": {}}}",
        rev.replace('"', ""),
        render_json(doc.get("meta").unwrap_or(&Json::Null)),
        render_json(doc.get("legs").unwrap_or(&Json::Null)),
        render_json(doc.get("warm_over_cold_throughput").unwrap_or(&Json::Null)),
    )
}

/// Returns `doc` with every number stored under a `*wall_ns` key
/// multiplied by `factor` — the artificial-regression hook behind
/// `bench_check --inject-wall`, used by CI to prove the gate trips.
pub fn inject_wall(doc: Json, factor: f64) -> Json {
    fn walk(j: Json, factor: f64, under_wall: bool) -> Json {
        match j {
            Json::Num(n) if under_wall => Json::Num(n * factor),
            Json::Arr(items) => Json::Arr(
                items
                    .into_iter()
                    .map(|i| walk(i, factor, under_wall))
                    .collect(),
            ),
            Json::Obj(members) => Json::Obj(
                members
                    .into_iter()
                    .map(|(k, val)| {
                        let wall = k.ends_with("wall_ns");
                        (k, walk(val, factor, wall))
                    })
                    .collect(),
            ),
            other => other,
        }
    }
    walk(doc, factor, false)
}

/// One `BENCH_history.jsonl` line for this run: the git revision, the
/// run's `meta` block verbatim, and the compact per-kernel figures
/// worth trending (wall and work units per backend, fused speedups,
/// rescued fractions). Single-line JSON, parseable by
/// [`lip_obs::json::Json::parse`].
pub fn history_line(doc: &Json, rev: &str, unix_secs: u64) -> String {
    fn num(j: &Json, k: &str) -> String {
        j.get(k)
            .and_then(Json::as_f64)
            .map(|n| {
                if n.fract() == 0.0 {
                    format!("{n:.0}")
                } else {
                    format!("{n:.3}")
                }
            })
            .unwrap_or("null".into())
    }
    let mut out = format!(
        "{{\"rev\": \"{}\", \"unix_secs\": {unix_secs}, \"meta\": ",
        rev.replace('"', "")
    );
    out.push_str(&render_json(doc.get("meta").unwrap_or(&Json::Null)));
    out.push_str(", \"kernels\": [");
    let mut first = true;
    for (block, fields) in [
        (
            "results",
            &["wall_ns", "work_units", "speedup_vs_treewalk"][..],
        ),
        (
            "fused_results",
            &["fused_wall_ns", "speedup_vs_unfused"][..],
        ),
        (
            "reduction_results",
            &["simd_wall_ns", "speedup_vs_boxed"][..],
        ),
        (
            "fission_results",
            &["rescued_fraction", "speedup_vs_sequential"][..],
        ),
    ] {
        for e in doc.get(block).and_then(Json::as_arr).unwrap_or(&[]).iter() {
            if !std::mem::take(&mut first) {
                out.push_str(", ");
            }
            let backend = e
                .get("backend")
                .and_then(Json::as_str)
                .map(|b| format!(", \"backend\": \"{b}\""))
                .unwrap_or_default();
            out.push_str(&format!(
                "{{\"block\": \"{block}\", \"kernel\": \"{}\"{backend}",
                e.get("kernel").and_then(Json::as_str).unwrap_or("?")
            ));
            for f in fields {
                out.push_str(&format!(", \"{f}\": {}", num(e, f)));
            }
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

/// Re-renders a parsed value as compact JSON (used for the `meta`
/// block in history lines).
fn render_json(j: &Json) -> String {
    match j {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{n:.0}")
            } else {
                format!("{n}")
            }
        }
        Json::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Json::Arr(items) => format!(
            "[{}]",
            items.iter().map(render_json).collect::<Vec<_>>().join(", ")
        ),
        Json::Obj(members) => format!(
            "{{{}}}",
            members
                .iter()
                .map(|(k, val)| format!("\"{k}\": {}", render_json(val)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::parse(
            r#"{
              "meta": {"schema_version": 2, "nthreads": 1, "backend": "bytecode", "pred": "Compiled", "opt_level": "Fuse", "fission": true},
              "results": [
                {"kernel": "stencil", "backend": "bytecode", "wall_ns": 100000.0, "work_units": 19459, "speedup_vs_treewalk": 2.5}
              ],
              "fused_results": [
                {"kernel": "stencil", "unfused_wall_ns": 100000.0, "fused_wall_ns": 80000.0, "speedup_vs_unfused": 1.25, "ops_unfused": 24, "ops_fused": 14}
              ],
              "reduction_results": [
                {"kernel": "merge_int_add", "elems": 65536, "op": "add", "ty": "int", "boxed_wall_ns": 800000.0, "simd_wall_ns": 100000.0, "speedup_vs_boxed": 8.0}
              ],
              "pred_results": [
                {"kernel": "solvh", "backend": "compiled", "wall_ns": 170000.0, "verdict": "pass", "passed_stage": 1, "failed_stage": null},
                {"kernel": "hoist_indirect", "backend": "compiled", "wall_ns": 300.0, "verdict": "fail", "passed_stage": null, "failed_stage": 0}
              ],
              "fission_results": [
                {"kernel": "hoist_indirect", "fragments": 2, "parallel_fragments": 1, "rescued_units": 13312, "loop_units": 26627, "rescued_fraction": 0.500, "fissioned_wall_ns": 350000000.0, "sequential_wall_ns": 640000000.0}
              ]
            }"#,
        )
        .expect("test doc parses")
    }

    #[test]
    fn identical_runs_pass_clean() {
        let d = doc();
        assert!(compare(&d, &d, &Tolerances::default()).is_empty());
    }

    #[test]
    fn injected_wall_regression_trips_the_band() {
        let d = doc();
        let slow = inject_wall(d.clone(), 1.30);
        let v = compare(&slow, &d, &Tolerances::default());
        assert!(!v.is_empty());
        assert!(v.iter().all(|x| !x.strict), "{v:?}");
        assert!(v.iter().any(|x| x.what.contains("stencil")));
        // …and stays clean under a band wide enough for the injection.
        let wide = Tolerances {
            wall_tol: 0.50,
            ..Tolerances::default()
        };
        assert!(compare(&slow, &d, &wide).is_empty());
    }

    #[test]
    fn tiny_walls_are_not_band_checked() {
        let d = doc();
        let slow = inject_wall(d.clone(), 1.30);
        let v = compare(&slow, &d, &Tolerances::default());
        // hoist_indirect/compiled (300 ns) is below the floor.
        assert!(v
            .iter()
            .all(|x| !x.what.contains("pred_results hoist_indirect")));
    }

    #[test]
    fn reduction_merge_rows_are_gated() {
        let base = doc();
        // A slower flat merge trips the wall band…
        let slow = inject_wall(base.clone(), 1.30);
        let v = compare(&slow, &base, &Tolerances::default());
        assert!(v
            .iter()
            .any(|x| !x.strict && x.what.contains("merge_int_add")));
        // …and changing the measured shape is a strict violation.
        let mut cur = doc();
        if let Json::Obj(members) = &mut cur {
            let block = members
                .iter_mut()
                .find(|(k, _)| k == "reduction_results")
                .unwrap();
            if let Json::Arr(rows) = &mut block.1 {
                if let Json::Obj(row) = &mut rows[0] {
                    row.iter_mut().find(|(k, _)| k == "elems").unwrap().1 = Json::Num(16.0);
                }
            }
        }
        let v = compare(&cur, &base, &Tolerances::default());
        assert!(v.iter().any(|x| x.strict && x.detail.contains("elems")));
    }

    #[test]
    fn work_unit_drift_is_strict() {
        let base = doc();
        let mut cur = doc();
        if let Json::Obj(members) = &mut cur {
            let results = members.iter_mut().find(|(k, _)| k == "results").unwrap();
            if let Json::Arr(rows) = &mut results.1 {
                if let Json::Obj(row) = &mut rows[0] {
                    row.iter_mut().find(|(k, _)| k == "work_units").unwrap().1 = Json::Num(1.0);
                }
            }
        }
        let v = compare(&cur, &base, &Tolerances::default());
        assert!(v
            .iter()
            .any(|x| x.strict && x.detail.contains("work_units")));
    }

    #[test]
    fn rescued_fraction_drop_is_strict_and_rise_is_fine() {
        let base = doc();
        let drop = Json::parse(&doc_with_fraction(0.25)).unwrap();
        let v = compare(&drop, &base, &Tolerances::default());
        assert!(v
            .iter()
            .any(|x| x.strict && x.detail.contains("rescued_fraction regressed")));
        // A higher fraction changes rescued_units too in a real run;
        // here only the fraction rises, so only the unit equality
        // (intentionally) still trips — the fraction itself must not.
        let rise = Json::parse(&doc_with_fraction(0.75)).unwrap();
        let v = compare(&rise, &base, &Tolerances::default());
        assert!(!v.iter().any(|x| x.detail.contains("regressed")));
    }

    fn doc_with_fraction(f: f64) -> String {
        format!(
            r#"{{
              "meta": {{"schema_version": 2, "nthreads": 1, "backend": "bytecode", "pred": "Compiled", "opt_level": "Fuse", "fission": true}},
              "fission_results": [
                {{"kernel": "hoist_indirect", "fragments": 2, "parallel_fragments": 1, "rescued_units": 13312, "loop_units": 26627, "rescued_fraction": {f:.3}, "fissioned_wall_ns": 350000000.0, "sequential_wall_ns": 640000000.0}}
              ]
            }}"#
        )
    }

    #[test]
    fn missing_kernel_is_strict() {
        let base = doc();
        let cur = Json::parse(r#"{"meta": {"schema_version": 2, "nthreads": 1, "backend": "bytecode", "pred": "Compiled", "opt_level": "Fuse", "fission": true}}"#).unwrap();
        let v = compare(&cur, &base, &Tolerances::default());
        assert!(v.iter().any(|x| x.detail.contains("missing")));
    }

    fn serve_doc(ratio: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "meta": {{"schema_version": 1, "bench": "serve", "pool": 4, "clients": 4, "requests_per_leg": 64, "kernel_n": 64, "sample_budget_ms": 200}},
              "legs": [
                {{"leg": "cold", "requests": 64, "wall_ns": 90000000, "throughput_rps": 711.0, "p50_ns": 5000000, "p99_ns": 9000000, "cache_hit_rate": 0.0}},
                {{"leg": "warm", "requests": 64, "wall_ns": 30000000, "throughput_rps": 2133.0, "p50_ns": 1500000, "p99_ns": 4000000, "cache_hit_rate": 0.9844}}
              ],
              "warm_over_cold_throughput": {ratio:.3}
            }}"#
        ))
        .expect("serve doc parses")
    }

    #[test]
    fn well_formed_serve_report_validates() {
        assert!(validate_serve(&serve_doc(3.0)).is_empty());
    }

    #[test]
    fn serve_validation_catches_missing_legs_and_inverted_ratio() {
        let v = validate_serve(&serve_doc(0.8));
        assert!(v
            .iter()
            .any(|x| x.detail.contains("warm leg slower than cold")));
        let empty = Json::parse(r#"{"meta": {"bench": "vm"}}"#).unwrap();
        let v = validate_serve(&empty);
        assert!(v.iter().any(|x| x.what == "meta"));
        assert!(v.iter().any(|x| x.what == "cold"));
        assert!(v.iter().any(|x| x.what == "warm"));
    }

    #[test]
    fn serve_history_line_is_one_parseable_json_line() {
        let line = serve_history_line(&serve_doc(3.0), "abc1234", 1_700_000_000);
        assert!(!line.contains('\n'));
        let parsed = Json::parse(&line).expect("history line parses");
        assert_eq!(parsed.get("bench").and_then(Json::as_str), Some("serve"));
        assert_eq!(
            parsed.get("legs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("warm_over_cold_throughput")
                .and_then(Json::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn history_line_is_one_parseable_json_line() {
        let line = history_line(&doc(), "abc1234", 1_700_000_000);
        assert!(!line.contains('\n'));
        let parsed = Json::parse(&line).expect("history line parses");
        assert_eq!(parsed.get("rev").unwrap().as_str(), Some("abc1234"));
        assert_eq!(
            parsed.path(&["meta", "schema_version"]).unwrap().as_u64(),
            Some(2)
        );
        assert!(!parsed.get("kernels").unwrap().as_arr().unwrap().is_empty());
    }
}
