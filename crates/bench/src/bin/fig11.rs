//! Regenerates Figure 11: normalized parallel timing, SPEC89/92,
//! 4 processors.
fn main() {
    let session = lip_bench::harness_session();
    lip_bench::print_figure(
        &session,
        "Figure 11: SPEC89/92 normalized parallel timing",
        lip_suite::SPEC92,
        4,
        "Intel-style",
    );
    println!(
        "average speedup: {:.2}x",
        lip_bench::average_speedup(&session, lip_suite::SPEC92, 4)
    );
}
