//! Regenerates Figure 11: normalized parallel timing, SPEC89/92,
//! 4 processors.
fn main() {
    lip_bench::print_figure(
        "Figure 11: SPEC89/92 normalized parallel timing",
        lip_suite::SPEC92,
        4,
        "Intel-style",
    );
    println!(
        "average speedup: {:.2}x",
        lip_bench::average_speedup(lip_suite::SPEC92, 4)
    );
}
