//! Regenerates Table 2: properties of the SPEC89/92 suites.
fn main() {
    let session = lip_bench::harness_session();
    lip_bench::print_table(&session, "Table 2: SPEC89/92 suites", lip_suite::SPEC92);
}
