//! Regenerates Table 2: properties of the SPEC89/92 suites.
fn main() {
    lip_bench::print_table("Table 2: SPEC89/92 suites", lip_suite::SPEC92);
}
