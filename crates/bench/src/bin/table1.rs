//! Regenerates Table 1: properties of the PERFECT-CLUB suite.
fn main() {
    lip_bench::print_table("Table 1: PERFECT-CLUB suite", lip_suite::PERFECT_CLUB);
}
