//! Regenerates Table 1: properties of the PERFECT-CLUB suite.
fn main() {
    let session = lip_bench::harness_session();
    lip_bench::print_table(
        &session,
        "Table 1: PERFECT-CLUB suite",
        lip_suite::PERFECT_CLUB,
    );
}
