//! Regenerates Figure 10: normalized parallel timing, PERFECT-CLUB,
//! 4 processors, factorization vs the Intel-style static baseline.
fn main() {
    let session = lip_bench::harness_session();
    lip_bench::print_figure(
        &session,
        "Figure 10: PERFECT-CLUB normalized parallel timing",
        lip_suite::PERFECT_CLUB,
        4,
        "Intel-style",
    );
    println!(
        "average speedup: {:.2}x",
        lip_bench::average_speedup(&session, lip_suite::PERFECT_CLUB, 4)
    );
}
