//! Emits `BENCH_vm.json`: wall-clock and work-unit figures for the hot
//! suite kernels under both execution backends, so the perf trajectory
//! stays machine-readable across PRs.
//!
//! ```sh
//! cargo run --release -p lip_bench --bin bench_vm   # writes ./BENCH_vm.json
//! LIP_BENCH_MS=20 cargo run --release -p lip_bench --bin bench_vm
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lip_ir::ExecState;
use lip_suite::KernelShape;
use lip_symbolic::sym;

struct Row {
    kernel: &'static str,
    backend: &'static str,
    wall_ns: f64,
    work_units: u64,
    speedup_vs_treewalk: f64,
}

fn sample_budget() -> Duration {
    let ms = std::env::var("LIP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// Times `run` adaptively: calibrate, then fill the sample budget.
fn time_ns(mut run: impl FnMut() -> u64) -> (f64, u64) {
    let calib = Instant::now();
    let mut units = 0;
    let mut calib_iters = 0u64;
    while calib.elapsed() < Duration::from_millis(5) && calib_iters < 1_000 {
        units = run();
        calib_iters += 1;
    }
    let per_iter = calib.elapsed().as_secs_f64() / calib_iters as f64;
    let n = ((sample_budget().as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
    let start = Instant::now();
    for _ in 0..n {
        units = run();
    }
    (start.elapsed().as_nanos() as f64 / n as f64, units)
}

fn measure(shape: &'static KernelShape, n: usize) -> (Row, Row) {
    let mut p = shape.prepared(n);
    let prog = p.machine.program().clone();
    let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
    let target = sub.find_loop(p.label).expect("loop").clone();

    let (tw_ns, tw_units) = time_ns(|| {
        let mut st = ExecState::default();
        p.machine
            .exec_stmt(&sub, &mut p.frame, &target, &mut st)
            .expect("interp");
        st.cost
    });

    let q = shape.prepared(n);
    let mut compiled = lip_vm::compile_program(&prog).expect("compiles");
    let block = lip_vm::add_block(&mut compiled, &sub, std::slice::from_ref(&target), &[])
        .expect("block compiles");
    let vm = lip_vm::Vm::for_machine(&compiled, &q.machine);
    let mut frame = lip_vm::Frame::for_chunk(&compiled.block(block).chunk, &q.frame);
    let (vm_ns, vm_units) = time_ns(|| {
        let mut st = ExecState::default();
        vm.run_block(block, &mut frame, &mut st, None).expect("vm");
        st.cost
    });
    assert_eq!(tw_units, vm_units, "{}: work units diverged", shape.name);

    (
        Row {
            kernel: shape.name,
            backend: "treewalk",
            wall_ns: tw_ns,
            work_units: tw_units,
            speedup_vs_treewalk: 1.0,
        },
        Row {
            kernel: shape.name,
            backend: "bytecode",
            wall_ns: vm_ns,
            work_units: vm_units,
            speedup_vs_treewalk: tw_ns / vm_ns,
        },
    )
}

fn main() {
    let mut rows = Vec::new();
    for (shape, n) in lip_bench::vm_hot_kernels() {
        let (tw, vm) = measure(shape, n);
        println!(
            "{:<18} treewalk {:>12.0} ns  bytecode {:>12.0} ns  speedup {:>5.2}x  ({} units)",
            tw.kernel, tw.wall_ns, vm.wall_ns, vm.speedup_vs_treewalk, tw.work_units
        );
        rows.push(tw);
        rows.push(vm);
    }

    let mut json = String::from("{\n  \"bench\": \"vm_dispatch\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"backend\": \"{}\", \"wall_ns\": {:.1}, \"work_units\": {}, \"speedup_vs_treewalk\": {:.3}}}{}",
            r.kernel,
            r.backend,
            r.wall_ns,
            r.work_units,
            r.speedup_vs_treewalk,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_vm.json", &json).expect("write BENCH_vm.json");
    println!("wrote BENCH_vm.json ({} rows)", rows.len());
}
