//! Emits `BENCH_vm.json`: wall-clock and work-unit figures for the hot
//! suite kernels under both execution backends, unfused vs
//! peephole-fused bytecode dispatch (`fused_results` — the
//! superinstruction pass win, with op counts), merge-phase timings for
//! buffered reductions (`reduction_results` — the corrected
//! element-wise boxed merge vs the typed flat-slice kernels the
//! executor runs, per operator and element type), per-kernel
//! predicate-evaluation timings for the O(N) cascade stages (tree-walk
//! `Pdag::eval` vs the compiled `lip_pred` engine, sequential and
//! chunk-parallel, with the index of the first failing stage),
//! loop-fission rescue figures (`fission_results` — fraction of work
//! units rescued into parallel fragments and wall-clock vs the fully
//! sequential `fission(false)` leg), cold-vs-warm `Session`
//! timings (cache reuse across `run_many`), a self-describing `meta`
//! block (schema version + seam configuration), and an `obs_results`
//! block: per-kernel decision reports recorded by an observer session
//! (the JSON twin of `Session::explain`) plus no-op recorder overhead
//! rows asserting the observability substrate stays under 2% on the
//! hot kernels. The perf trajectory
//! stays machine-readable across PRs. Backends are pinned by building sessions — nothing here
//! reads or mutates the `LIP_*` environment.
//!
//! ```sh
//! cargo run --release -p lip_bench --bin bench_vm   # writes ./BENCH_vm.json
//! LIP_BENCH_MS=20 cargo run --release -p lip_bench --bin bench_vm
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lip_analysis::{analyze_loop, AnalysisConfig};
use lip_ir::{ArrayBuf, BinOp, ExecState, StoreCtx, Ty};
use lip_obs::{NoopRecorder, ObsLevel};
use lip_pred::{compile_pred, eval_compiled, EvalParams};
use lip_runtime::{Backend, LoopJob, PredBackend, Session};
use lip_suite::KernelShape;
use lip_symbolic::sym;

/// Schema version of `BENCH_vm.json` (bumped when blocks or fields
/// change meaning: v2 added the `meta` and `obs_results` blocks and
/// made `pred_results.failed_stage` nullable with a `passed_stage`
/// companion; v3 added the `reduction_results` merge-phase block —
/// boxed element-wise vs typed flat-slice merge kernels).
const SCHEMA_VERSION: u32 = 3;

struct Row {
    kernel: &'static str,
    backend: &'static str,
    wall_ns: f64,
    work_units: u64,
    speedup_vs_treewalk: f64,
}

fn sample_budget() -> Duration {
    let ms = std::env::var("LIP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// Times `run` adaptively: calibrate, then fill the sample budget.
fn time_ns(mut run: impl FnMut() -> u64) -> (f64, u64) {
    let calib = Instant::now();
    let mut units = 0;
    let mut calib_iters = 0u64;
    while calib.elapsed() < Duration::from_millis(5) && calib_iters < 1_000 {
        units = run();
        calib_iters += 1;
    }
    let per_iter = calib.elapsed().as_secs_f64() / calib_iters as f64;
    let n = ((sample_budget().as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
    let start = Instant::now();
    for _ in 0..n {
        units = run();
    }
    (start.elapsed().as_nanos() as f64 / n as f64, units)
}

fn measure(shape: &'static KernelShape, n: usize) -> (Row, Row) {
    let mut p = shape.prepared(n);
    let prog = p.machine.program().clone();
    let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
    let target = sub.find_loop(p.label).expect("loop").clone();

    let (tw_ns, tw_units) = time_ns(|| {
        let mut st = ExecState::default();
        p.machine
            .exec_stmt(&sub, &mut p.frame, &target, &mut st)
            .expect("interp");
        st.cost
    });

    let q = shape.prepared(n);
    let mut compiled = lip_vm::compile_program(&prog).expect("compiles");
    let block = lip_vm::add_block(&mut compiled, &sub, std::slice::from_ref(&target), &[])
        .expect("block compiles");
    let vm = lip_vm::Vm::for_machine(&compiled, &q.machine);
    let mut frame = lip_vm::Frame::for_chunk(&compiled.block(block).chunk, &q.frame);
    let (vm_ns, vm_units) = time_ns(|| {
        let mut st = ExecState::default();
        vm.run_block(block, &mut frame, &mut st, None).expect("vm");
        st.cost
    });
    assert_eq!(tw_units, vm_units, "{}: work units diverged", shape.name);

    (
        Row {
            kernel: shape.name,
            backend: "treewalk",
            wall_ns: tw_ns,
            work_units: tw_units,
            speedup_vs_treewalk: 1.0,
        },
        Row {
            kernel: shape.name,
            backend: "bytecode",
            wall_ns: vm_ns,
            work_units: vm_units,
            speedup_vs_treewalk: tw_ns / vm_ns,
        },
    )
}

struct FusedRow {
    kernel: &'static str,
    unfused_wall_ns: f64,
    fused_wall_ns: f64,
    speedup_vs_unfused: f64,
    ops_unfused: usize,
    ops_fused: usize,
}

/// Times the kernel's target loop block on raw bytecode vs the
/// peephole-fused stream (the superinstruction pass), asserting
/// identical work units. The op counts record how far the stream
/// shrank — the dispatch-count reduction the wall-clock win comes
/// from. Unlike the backend rows, the two streams here differ by tens
/// of percent, not integer factors, so they are timed *interleaved*
/// (alternating rounds, best round per stream) to cancel machine
/// drift.
fn measure_fused(shape: &'static KernelShape, n: usize) -> FusedRow {
    let p = shape.prepared(n);
    let prog = p.machine.program().clone();
    let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
    let target = sub.find_loop(p.label).expect("loop").clone();

    struct Stream {
        compiled: lip_vm::CompiledProgram,
        block: lip_vm::BlockId,
        frame: lip_vm::Frame,
        machine: lip_ir::Machine,
        nops: usize,
    }
    let build = |fuse: bool| {
        let q = shape.prepared(n);
        let mut compiled = lip_vm::compile_program(&prog).expect("compiles");
        let block = lip_vm::add_block(&mut compiled, &sub, std::slice::from_ref(&target), &[])
            .expect("block compiles");
        if fuse {
            lip_vm::optimize_block(&mut compiled, block);
        }
        let nops = compiled.block(block).chunk.ops.len();
        let frame = lip_vm::Frame::for_chunk(&compiled.block(block).chunk, &q.frame);
        Stream {
            compiled,
            block,
            frame,
            machine: q.machine,
            nops,
        }
    };
    let mut unfused = build(false);
    let mut fused = build(true);
    let run = |s: &mut Stream| {
        let vm = lip_vm::Vm::for_machine(&s.compiled, &s.machine);
        let mut st = ExecState::default();
        vm.run_block(s.block, &mut s.frame, &mut st, None)
            .expect("vm");
        st.cost
    };
    let unfused_units = run(&mut unfused);
    let fused_units = run(&mut fused);
    assert_eq!(
        unfused_units, fused_units,
        "{}: fused work units diverged",
        shape.name
    );

    // Calibrate on the unfused stream, then alternate fixed-size
    // rounds and keep each stream's best round.
    let calib = Instant::now();
    let mut calib_iters = 0u64;
    while calib.elapsed() < Duration::from_millis(5) && calib_iters < 1_000 {
        run(&mut unfused);
        calib_iters += 1;
    }
    let per_iter = calib.elapsed().as_secs_f64() / calib_iters as f64;
    let rounds = 15u32;
    let per_round = sample_budget().as_secs_f64() / f64::from(2 * rounds);
    let iters = ((per_round / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
    let mut best = [f64::INFINITY; 2];
    for round in 0..rounds {
        // Alternate which stream goes first so a monotone frequency
        // drift cannot systematically favor one of them.
        let mut order = [(0usize, &mut unfused), (1usize, &mut fused)];
        if round % 2 == 1 {
            order.swap(0, 1);
        }
        for (slot, s) in order {
            let start = Instant::now();
            for _ in 0..iters {
                run(s);
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            best[slot] = best[slot].min(ns);
        }
    }
    FusedRow {
        kernel: shape.name,
        unfused_wall_ns: best[0],
        fused_wall_ns: best[1],
        speedup_vs_unfused: best[0] / best[1],
        ops_unfused: unfused.nops,
        ops_fused: fused.nops,
    }
}

struct ReductionRow {
    kernel: String,
    elems: usize,
    op: &'static str,
    ty: &'static str,
    boxed_wall_ns: f64,
    simd_wall_ns: f64,
    speedup_vs_boxed: f64,
}

/// Times the merge phase of a buffered reduction — one thread's
/// private buffer folded into the shared array — under the corrected
/// element-wise boxed reference (`merge_into_boxed`, one
/// `Value`-dispatch per element) vs the typed flat-slice kernel
/// (`merge_into`, the path the executor runs). The private buffer is
/// the operator's identity, so every iteration performs identical work
/// while the shared values stay fixed; like the fusion rows the gap is
/// tens of percent to integer factors, so the two legs are timed
/// interleaved, best round each.
fn measure_reduction_merge(ty: Ty, op: BinOp, elems: usize) -> ReductionRow {
    use lip_runtime::{identity_buf, merge_into, merge_into_boxed};
    let shared = match ty {
        Ty::Int => ArrayBuf::from_i64(
            &(0..elems)
                .map(|k| (1i64 << 61) + k as i64)
                .collect::<Vec<_>>(),
        ),
        Ty::Real => {
            ArrayBuf::from_f64(&(0..elems).map(|k| k as f64 * 0.5 + 1.0).collect::<Vec<_>>())
        }
    };
    let private = identity_buf(&shared, op);

    let calib = Instant::now();
    let mut calib_iters = 0u64;
    while calib.elapsed() < Duration::from_millis(5) && calib_iters < 1_000 {
        merge_into(&shared, &private, op);
        calib_iters += 1;
    }
    let per_iter = calib.elapsed().as_secs_f64() / calib_iters as f64;
    let rounds = 15u32;
    let per_round = sample_budget().as_secs_f64() / f64::from(2 * rounds);
    let iters = ((per_round / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
    let mut best = [f64::INFINITY; 2];
    for round in 0..rounds {
        let mut order = [0usize, 1];
        if round % 2 == 1 {
            order.swap(0, 1);
        }
        for slot in order {
            let start = Instant::now();
            for _ in 0..iters {
                if slot == 0 {
                    merge_into_boxed(&shared, &private, op);
                } else {
                    merge_into(&shared, &private, op);
                }
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            best[slot] = best[slot].min(ns);
        }
    }
    let op_name = match op {
        BinOp::Mul => "mul",
        BinOp::Lt => "min",
        BinOp::Gt => "max",
        _ => "add",
    };
    let ty_name = match ty {
        Ty::Int => "int",
        Ty::Real => "real",
    };
    ReductionRow {
        kernel: format!("merge_{ty_name}_{op_name}"),
        elems,
        op: op_name,
        ty: ty_name,
        boxed_wall_ns: best[0],
        simd_wall_ns: best[1],
        speedup_vs_boxed: best[0] / best[1],
    }
}

struct PredRow {
    kernel: &'static str,
    stage_complexity: u32,
    backend: &'static str,
    wall_ns: f64,
    speedup_vs_treewalk: f64,
    verdict: &'static str,
    /// Index of the first cascade stage that *passes* on the prepared
    /// workload (`None` = no stage passes — the cascade's stages are
    /// alternatives, so one pass parallelizes the loop).
    passed_stage: Option<usize>,
    /// Index of the first failing stage **when the whole cascade
    /// fails** — `None` whenever some stage passes, so "passed" and
    /// "failed at stage 0" are distinguishable in the JSON. Recorded
    /// so CI can catch silent verdict regressions and attribute
    /// fission rescues to the stage that forced them.
    failed_stage: Option<usize>,
}

fn verdict_str(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "pass",
        Some(false) => "fail",
        None => "unknown",
    }
}

/// Times the kernel's most expensive cascade stage (the O(N) test)
/// under the three evaluation modes, asserting identical verdicts.
///
/// The stage comes from the whole loop's cascade when that cascade has
/// a quantified stage; a *fissioned* loop keeps an empty whole-loop
/// cascade (it was provably dependent as a unit), so its runtime tests
/// live on the fragments — we then time the richest fragment cascade
/// instead, which is also where `failed_stage` must point for the
/// rescue to be attributable.
fn measure_pred(shape: &'static KernelShape, n: usize) -> Vec<PredRow> {
    let p = shape.prepared(n);
    let prog = p.machine.program().clone();
    let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
    let analysis =
        analyze_loop(&prog, sub.name, p.label, &AnalysisConfig::default()).expect("analysis");
    fn max_c(c: &lip_core::Cascade) -> u32 {
        c.stages.iter().map(|s| s.complexity).max().unwrap_or(0)
    }
    let stages: &[_] = if max_c(&analysis.cascade) >= 1 {
        &analysis.cascade.stages
    } else {
        let frag = analysis.fission.as_deref().and_then(|plan| {
            plan.fragments
                .iter()
                .map(|f| &f.analysis.cascade)
                .filter(|c| max_c(c) >= 1)
                .max_by_key(|c| max_c(c))
        });
        match frag {
            Some(c) => &c.stages,
            None => return Vec::new(),
        }
    };
    let stage = stages
        .iter()
        .max_by_key(|s| s.complexity)
        .expect("quantified stage");
    let ctx = StoreCtx(&p.frame);
    let limit = 100_000_000u64;
    // The stages are alternatives: the first pass wins the loop, so a
    // "failed stage" is only meaningful when *no* stage passes.
    let passed_stage = stages
        .iter()
        .position(|s| s.pred.eval(&ctx, limit) == Some(true));
    let failed_stage = match passed_stage {
        Some(_) => None,
        None => stages
            .iter()
            .position(|s| s.pred.eval(&ctx, limit) != Some(true)),
    };
    let nthreads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let tree_verdict = stage.pred.eval(&ctx, limit);
    let (tree_ns, _) = time_ns(|| {
        std::hint::black_box(stage.pred.eval(&ctx, limit));
        0
    });
    let compiled = compile_pred(&stage.pred).expect("stage compiles");
    let seq_params = EvalParams {
        nthreads: 1,
        par_min: i64::MAX,
    };
    let par_params = EvalParams {
        nthreads,
        par_min: 512,
    };
    assert_eq!(
        tree_verdict,
        eval_compiled(&compiled, &ctx, limit, seq_params),
        "{}: compiled verdict diverged",
        shape.name
    );
    assert_eq!(
        tree_verdict,
        eval_compiled(&compiled, &ctx, limit, par_params),
        "{}: parallel verdict diverged",
        shape.name
    );
    let (seq_ns, _) = time_ns(|| {
        std::hint::black_box(eval_compiled(&compiled, &ctx, limit, seq_params));
        0
    });
    let (par_ns, _) = time_ns(|| {
        std::hint::black_box(eval_compiled(&compiled, &ctx, limit, par_params));
        0
    });
    let verdict = verdict_str(tree_verdict);
    let row = |backend, wall_ns: f64| PredRow {
        kernel: shape.name,
        stage_complexity: stage.complexity,
        backend,
        wall_ns,
        speedup_vs_treewalk: tree_ns / wall_ns,
        verdict,
        passed_stage,
        failed_stage,
    };
    vec![
        row("treewalk", tree_ns),
        row("compiled", seq_ns),
        row("compiled-par", par_ns),
    ]
}

struct FissionRow {
    kernel: &'static str,
    fragments: usize,
    parallel_fragments: usize,
    rescued_units: u64,
    loop_units: u64,
    rescued_fraction: f64,
    fissioned_wall_ns: f64,
    sequential_wall_ns: f64,
    speedup_vs_sequential: f64,
}

/// Measures the loop-fission rescue on kernels whose analysis carries
/// a fission plan *and* whose fissioned execution actually rescues
/// fragments on the prepared workload: work units spent inside
/// parallel fragments (the rescued fraction of the loop body) and
/// wall-clock fissioned vs fully sequential (`fission(false)` — the
/// classic whole-loop behavior the rescue degrades from). Work-unit
/// totals must agree between the two legs: fission re-orders execution
/// but never changes what the loop computes or charges.
fn measure_fission(shape: &'static KernelShape, n: usize) -> Option<FissionRow> {
    let p = shape.prepared(n);
    let prog = p.machine.program().clone();
    let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
    let target = sub.find_loop(p.label).expect("loop").clone();
    let on = Session::builder()
        .backend(Backend::Bytecode)
        .pred(PredBackend::Compiled)
        .fission(true)
        .build();
    let off = Session::builder()
        .backend(Backend::Bytecode)
        .pred(PredBackend::Compiled)
        .fission(false)
        .build();
    let analysis = on.analyze(&prog, sub.name, p.label).expect("analysis");
    analysis.fission.as_ref()?;

    let run_once = |session: &Session| {
        let mut frame = p.frame.clone();
        let stats = session
            .run_many([LoopJob {
                machine: &p.machine,
                sub: &sub,
                target: &target,
                analysis: &analysis,
                frame: &mut frame,
            }])
            .expect("runs");
        stats.into_iter().next().expect("one job")
    };

    let fissioned = run_once(&on);
    let lip_runtime::ExecOutcome::Fissioned {
        fragments,
        parallel,
        rescued_units,
    } = fissioned.outcome
    else {
        return None; // cascade or exact test rescued the whole loop first
    };
    let sequential = run_once(&off);
    assert_eq!(
        fissioned.loop_units, sequential.loop_units,
        "{}: fissioned work units diverged from sequential",
        shape.name
    );
    let (fissioned_wall_ns, _) = time_ns(|| run_once(&on).loop_units);
    let (sequential_wall_ns, _) = time_ns(|| run_once(&off).loop_units);
    Some(FissionRow {
        kernel: shape.name,
        fragments,
        parallel_fragments: parallel,
        rescued_units,
        loop_units: fissioned.loop_units,
        rescued_fraction: rescued_units as f64 / fissioned.loop_units as f64,
        fissioned_wall_ns,
        sequential_wall_ns,
        speedup_vs_sequential: sequential_wall_ns / fissioned_wall_ns,
    })
}

struct ReuseRow {
    kernel: &'static str,
    cold_ns: f64,
    warm_ns: f64,
    cold_over_warm: f64,
}

/// A session pinned to the fast pair of seams.
fn fast_session() -> Session {
    Session::builder()
        .backend(Backend::Bytecode)
        .pred(PredBackend::Compiled)
        .build()
}

/// Times one kernel through `Session::run_many` twice over: **cold**
/// (a fresh session per sample — every run pays program compilation,
/// block lowering and predicate compilation) vs **warm** (one
/// persistent session — runs hit the compiled-program cache and the
/// predicate verdict memo). The gap is the caching win a long-lived
/// service keeps by holding one session across requests.
fn measure_session_reuse(shape: &'static KernelShape, n: usize) -> ReuseRow {
    let p = shape.prepared(n);
    let prog = p.machine.program().clone();
    let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
    let target = sub.find_loop(p.label).expect("loop").clone();
    let analysis = fast_session()
        .analyze(&prog, sub.name, p.label)
        .expect("analysis");

    let run_once = |session: &Session| {
        let mut frame = p.frame.clone();
        let stats = session
            .run_many([LoopJob {
                machine: &p.machine,
                sub: &sub,
                target: &target,
                analysis: &analysis,
                frame: &mut frame,
            }])
            .expect("runs");
        stats[0].loop_units
    };

    let (cold_ns, _) = time_ns(|| run_once(&fast_session()));
    let warm = fast_session();
    run_once(&warm); // populate the caches once
    let (warm_ns, _) = time_ns(|| run_once(&warm));
    ReuseRow {
        kernel: shape.name,
        cold_ns,
        warm_ns,
        cold_over_warm: cold_ns / warm_ns,
    }
}

/// Runs the kernel once through an observer session and returns the
/// recorded per-loop decision as JSON (the same report
/// `Session::explain` renders as text), re-keyed by the kernel name so
/// both `explain("hoist_indirect")` and `explain("do20")` resolve it.
fn measure_obs_decision(shape: &'static KernelShape, n: usize) -> Option<String> {
    let session = Session::builder()
        .backend(Backend::Bytecode)
        .pred(PredBackend::Compiled)
        .fission(true)
        .observer(ObsLevel::Trace)
        .build();
    let p = shape.prepared(n);
    let prog = p.machine.program().clone();
    let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
    let target = sub.find_loop(p.label).expect("loop").clone();
    let analysis = session.analyze(&prog, sub.name, p.label)?;
    let mut frame = p.frame.clone();
    session
        .run_many([LoopJob {
            machine: &p.machine,
            sub: &sub,
            target: &target,
            analysis: &analysis,
            frame: &mut frame,
        }])
        .ok()?;
    let mut d = session.explain_decision(p.label)?;
    d.kernel = Some(shape.name.to_string());
    Some(d.to_json())
}

struct NoopRow {
    kernel: &'static str,
    off_ns: f64,
    noop_ns: f64,
    ratio: f64,
}

/// Times one hot kernel through `Session::run_many` with observability
/// **off** (the disabled path: one branch per instrumentation site —
/// the default every user gets, equal to the pre-observability
/// executor) vs a session holding a [`NoopRecorder`] (every metrics
/// site live, the sink discards everything). Interleaved best-of-round
/// timing, like the fusion rows, because the gap is percent-level.
/// The ratio is the price of leaving a no-op observer installed; the
/// bench asserts it stays under 2%.
fn measure_noop_overhead(shape: &'static KernelShape, n: usize) -> NoopRow {
    let p = shape.prepared(n);
    let prog = p.machine.program().clone();
    let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
    let target = sub.find_loop(p.label).expect("loop").clone();
    let analysis = fast_session()
        .analyze(&prog, sub.name, p.label)
        .expect("analysis");
    let off = fast_session();
    let noop = Session::builder()
        .backend(Backend::Bytecode)
        .pred(PredBackend::Compiled)
        .observer_recorder(ObsLevel::Metrics, Arc::new(NoopRecorder))
        .build();

    let run_once = |session: &Session| {
        let mut frame = p.frame.clone();
        let stats = session
            .run_many([LoopJob {
                machine: &p.machine,
                sub: &sub,
                target: &target,
                analysis: &analysis,
                frame: &mut frame,
            }])
            .expect("runs");
        stats[0].loop_units
    };
    // Warm both sessions' caches so neither leg pays compilation.
    let off_units = run_once(&off);
    let noop_units = run_once(&noop);
    assert_eq!(
        off_units, noop_units,
        "{}: observed work units diverged",
        shape.name
    );

    let calib = Instant::now();
    let mut calib_iters = 0u64;
    while calib.elapsed() < Duration::from_millis(5) && calib_iters < 1_000 {
        run_once(&off);
        calib_iters += 1;
    }
    let per_iter = calib.elapsed().as_secs_f64() / calib_iters as f64;
    let rounds = 15u32;
    let per_round = sample_budget().as_secs_f64() / f64::from(2 * rounds);
    let iters = ((per_round / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
    let mut best = [f64::INFINITY; 2];
    for round in 0..rounds {
        let mut order = [(0usize, &off), (1usize, &noop)];
        if round % 2 == 1 {
            order.swap(0, 1);
        }
        for (slot, s) in order {
            let start = Instant::now();
            for _ in 0..iters {
                run_once(s);
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            best[slot] = best[slot].min(ns);
        }
    }
    NoopRow {
        kernel: shape.name,
        off_ns: best[0],
        noop_ns: best[1],
        ratio: best[1] / best[0],
    }
}

/// The self-describing `meta` block: schema version plus the seam
/// configuration the session-based legs (fission, reuse, obs) run
/// under, so the per-PR trajectory needs no out-of-band context.
fn meta_json() -> String {
    let s = fast_session();
    let cfg = s.config();
    format!(
        "  \"meta\": {{\"schema_version\": {}, \"nthreads\": {}, \"backend\": \"{}\", \"pred\": \"{:?}\", \"opt_level\": \"{:?}\", \"fission\": {}, \"sample_budget_ms\": {}}},\n",
        SCHEMA_VERSION,
        cfg.nthreads,
        cfg.backend,
        cfg.pred,
        cfg.opt_level,
        cfg.fission,
        sample_budget().as_millis(),
    )
}

fn main() {
    let mut rows = Vec::new();
    for (shape, n) in lip_bench::vm_hot_kernels() {
        let (tw, vm) = measure(shape, n);
        println!(
            "{:<18} treewalk {:>12.0} ns  bytecode {:>12.0} ns  speedup {:>5.2}x  ({} units)",
            tw.kernel, tw.wall_ns, vm.wall_ns, vm.speedup_vs_treewalk, tw.work_units
        );
        rows.push(tw);
        rows.push(vm);
    }

    let mut fused_rows = Vec::new();
    for (shape, n) in lip_bench::vm_hot_kernels() {
        let r = measure_fused(shape, n);
        println!(
            "{:<18} unfused {:>12.0} ns  fused {:>12.0} ns  fusion win {:>5.2}x  (ops {} -> {})",
            r.kernel,
            r.unfused_wall_ns,
            r.fused_wall_ns,
            r.speedup_vs_unfused,
            r.ops_unfused,
            r.ops_fused
        );
        fused_rows.push(r);
    }

    let mut reduction_rows = Vec::new();
    for ty in [Ty::Int, Ty::Real] {
        for op in [BinOp::Add, BinOp::Mul, BinOp::Lt, BinOp::Gt] {
            let r = measure_reduction_merge(ty, op, 1 << 16);
            println!(
                "{:<18} merge boxed {:>12.0} ns  flat {:>12.0} ns  merge win {:>5.2}x  ({} elems)",
                r.kernel, r.boxed_wall_ns, r.simd_wall_ns, r.speedup_vs_boxed, r.elems
            );
            reduction_rows.push(r);
        }
    }

    let mut pred_rows = Vec::new();
    for (shape, n) in lip_bench::pred_kernels() {
        let kernel_rows = measure_pred(shape, n);
        if let [tw, seq, par] = kernel_rows.as_slice() {
            println!(
                "{:<18} pred O(N{}) treewalk {:>10.0} ns  compiled {:>10.0} ns ({:>5.2}x)  parallel {:>10.0} ns ({:>5.2}x)  [{}]",
                tw.kernel,
                if tw.stage_complexity > 1 { "^k" } else { "" },
                tw.wall_ns,
                seq.wall_ns,
                seq.speedup_vs_treewalk,
                par.wall_ns,
                par.speedup_vs_treewalk,
                tw.verdict,
            );
        }
        pred_rows.extend(kernel_rows);
    }

    let mut fission_rows = Vec::new();
    for (shape, n) in lip_bench::fission_kernels() {
        let Some(r) = measure_fission(shape, n) else {
            continue;
        };
        println!(
            "{:<18} fission {}/{} frags parallel  rescued {:>5.1}%  fissioned {:>12.0} ns  sequential {:>12.0} ns ({:>5.2}x)",
            r.kernel,
            r.parallel_fragments,
            r.fragments,
            r.rescued_fraction * 100.0,
            r.fissioned_wall_ns,
            r.sequential_wall_ns,
            r.speedup_vs_sequential,
        );
        fission_rows.push(r);
    }

    let mut reuse_rows = Vec::new();
    for (shape, n) in lip_bench::vm_hot_kernels() {
        let r = measure_session_reuse(shape, n);
        println!(
            "{:<18} session cold {:>12.0} ns  warm {:>12.0} ns  reuse win {:>5.2}x",
            r.kernel, r.cold_ns, r.warm_ns, r.cold_over_warm
        );
        reuse_rows.push(r);
    }

    let mut decision_rows = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for (shape, n) in lip_bench::pred_kernels()
        .into_iter()
        .chain(lip_bench::fission_kernels())
    {
        if !seen.insert(shape.name) {
            continue;
        }
        let Some(j) = measure_obs_decision(shape, n) else {
            continue;
        };
        println!("{:<18} decision recorded ({} bytes)", shape.name, j.len());
        decision_rows.push(j);
    }

    let mut noop_rows = Vec::new();
    for (shape, n) in lip_bench::vm_hot_kernels() {
        // Best-of-round timing still jitters at the percent level;
        // retry a failing kernel before declaring a regression.
        let mut r = measure_noop_overhead(shape, n);
        for _ in 0..2 {
            if r.ratio < 1.02 {
                break;
            }
            r = measure_noop_overhead(shape, n);
        }
        println!(
            "{:<18} obs off {:>12.0} ns  noop recorder {:>12.0} ns  overhead {:>5.2}%",
            r.kernel,
            r.off_ns,
            r.noop_ns,
            (r.ratio - 1.0) * 100.0
        );
        assert!(
            r.ratio < 1.02,
            "{}: no-op observer overhead {:.2}% exceeds the 2% budget",
            r.kernel,
            (r.ratio - 1.0) * 100.0
        );
        noop_rows.push(r);
    }

    let mut json = String::from("{\n  \"bench\": \"vm_dispatch\",\n");
    json.push_str(&meta_json());
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"backend\": \"{}\", \"wall_ns\": {:.1}, \"work_units\": {}, \"speedup_vs_treewalk\": {:.3}}}{}",
            r.kernel,
            r.backend,
            r.wall_ns,
            r.work_units,
            r.speedup_vs_treewalk,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"fused_results\": [\n");
    for (i, r) in fused_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"unfused_wall_ns\": {:.1}, \"fused_wall_ns\": {:.1}, \"speedup_vs_unfused\": {:.3}, \"ops_unfused\": {}, \"ops_fused\": {}}}{}",
            r.kernel,
            r.unfused_wall_ns,
            r.fused_wall_ns,
            r.speedup_vs_unfused,
            r.ops_unfused,
            r.ops_fused,
            if i + 1 == fused_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"reduction_results\": [\n");
    for (i, r) in reduction_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"elems\": {}, \"op\": \"{}\", \"ty\": \"{}\", \"boxed_wall_ns\": {:.1}, \"simd_wall_ns\": {:.1}, \"speedup_vs_boxed\": {:.3}}}{}",
            r.kernel,
            r.elems,
            r.op,
            r.ty,
            r.boxed_wall_ns,
            r.simd_wall_ns,
            r.speedup_vs_boxed,
            if i + 1 == reduction_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"pred_results\": [\n");
    for (i, r) in pred_rows.iter().enumerate() {
        let passed = r.passed_stage.map_or("null".into(), |s| s.to_string());
        let failed = r.failed_stage.map_or("null".into(), |s| s.to_string());
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"stage_complexity\": {}, \"backend\": \"{}\", \"wall_ns\": {:.1}, \"speedup_vs_treewalk\": {:.3}, \"verdict\": \"{}\", \"passed_stage\": {}, \"failed_stage\": {}}}{}",
            r.kernel,
            r.stage_complexity,
            r.backend,
            r.wall_ns,
            r.speedup_vs_treewalk,
            r.verdict,
            passed,
            failed,
            if i + 1 == pred_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"fission_results\": [\n");
    for (i, r) in fission_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"fragments\": {}, \"parallel_fragments\": {}, \"rescued_units\": {}, \"loop_units\": {}, \"rescued_fraction\": {:.3}, \"fissioned_wall_ns\": {:.1}, \"sequential_wall_ns\": {:.1}, \"speedup_vs_sequential\": {:.3}}}{}",
            r.kernel,
            r.fragments,
            r.parallel_fragments,
            r.rescued_units,
            r.loop_units,
            r.rescued_fraction,
            r.fissioned_wall_ns,
            r.sequential_wall_ns,
            r.speedup_vs_sequential,
            if i + 1 == fission_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"session_reuse\": [\n");
    for (i, r) in reuse_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"cold_wall_ns\": {:.1}, \"warm_wall_ns\": {:.1}, \"cold_over_warm\": {:.3}}}{}",
            r.kernel,
            r.cold_ns,
            r.warm_ns,
            r.cold_over_warm,
            if i + 1 == reuse_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"obs_results\": {\n    \"decisions\": [\n");
    for (i, d) in decision_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {}{}",
            d,
            if i + 1 == decision_rows.len() {
                ""
            } else {
                ","
            }
        );
    }
    json.push_str("    ],\n    \"noop_overhead\": [\n");
    for (i, r) in noop_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"kernel\": \"{}\", \"off_wall_ns\": {:.1}, \"noop_wall_ns\": {:.1}, \"ratio\": {:.4}}}{}",
            r.kernel,
            r.off_ns,
            r.noop_ns,
            r.ratio,
            if i + 1 == noop_rows.len() { "" } else { "," }
        );
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write("BENCH_vm.json", &json).expect("write BENCH_vm.json");
    println!(
        "wrote BENCH_vm.json ({} vm rows, {} fused rows, {} reduction rows, {} pred rows, {} fission rows, {} session-reuse rows, {} decisions, {} noop rows)",
        rows.len(),
        fused_rows.len(),
        reduction_rows.len(),
        pred_rows.len(),
        fission_rows.len(),
        reuse_rows.len(),
        decision_rows.len(),
        noop_rows.len()
    );
}
