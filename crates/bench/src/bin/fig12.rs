//! Regenerates Figure 12: normalized parallel timing, SPEC2000/2006,
//! 8 processors, factorization vs the XLF-style static baseline.
fn main() {
    let session = lip_bench::harness_session();
    lip_bench::print_figure(
        &session,
        "Figure 12: SPEC2000/2006 normalized parallel timing",
        lip_suite::SPEC2006,
        8,
        "XLF-style",
    );
    println!(
        "average speedup: {:.2}x",
        lip_bench::average_speedup(&session, lip_suite::SPEC2006, 8)
    );
}
