//! Regenerates Table 3: properties of the SPEC2000/2006 suites.
fn main() {
    let session = lip_bench::harness_session();
    lip_bench::print_table(
        &session,
        "Table 3: SPEC2000/2006 suites",
        lip_suite::SPEC2006,
    );
}
