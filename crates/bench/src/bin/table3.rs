//! Regenerates Table 3: properties of the SPEC2000/2006 suites.
fn main() {
    lip_bench::print_table("Table 3: SPEC2000/2006 suites", lip_suite::SPEC2006);
}
