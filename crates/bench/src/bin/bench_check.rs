//! Bench-regression sentry: compares a fresh `BENCH_vm.json` against
//! the committed baseline and appends the run to `BENCH_history.jsonl`.
//!
//! ```text
//! bench_check [--current FILE] [--baseline FILE] [--history FILE]
//!             [--wall-tol F] [--ratio-tol F] [--inject-wall FACTOR]
//!             [--no-append] [--serve FILE]
//! ```
//!
//! Exit status 0 when every check passes, 1 on any violation (strict
//! determinism drift or a wall-clock regression beyond the band), 2 on
//! usage/IO errors. `--inject-wall 1.30` multiplies the current run's
//! wall figures by 1.30 before comparing — CI uses it against the
//! run's own file to prove the gate trips on a 30% regression with
//! zero measurement jitter involved.
//!
//! `--serve FILE` switches to serve mode: instead of the baseline
//! comparison, it sanity-validates a `BENCH_serve.json` report (legs
//! present, throughput positive, quantiles ordered, warm ≥ cold) and
//! appends a `"bench": "serve"` line to the history.

use lip_bench::sentry::{
    compare, history_line, inject_wall, serve_history_line, validate_serve, Tolerances,
};
use lip_obs::json::Json;

struct Args {
    current: String,
    baseline: String,
    history: String,
    tol: Tolerances,
    inject: Option<f64>,
    append: bool,
    serve: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        current: "BENCH_vm.json".into(),
        baseline: "BENCH_baseline.json".into(),
        history: "BENCH_history.jsonl".into(),
        tol: Tolerances::default(),
        inject: None,
        append: true,
        serve: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match a.as_str() {
            "--current" => args.current = val("--current")?,
            "--baseline" => args.baseline = val("--baseline")?,
            "--history" => args.history = val("--history")?,
            "--wall-tol" => {
                args.tol.wall_tol = val("--wall-tol")?
                    .parse()
                    .map_err(|e| format!("--wall-tol: {e}"))?
            }
            "--ratio-tol" => {
                args.tol.ratio_tol = val("--ratio-tol")?
                    .parse()
                    .map_err(|e| format!("--ratio-tol: {e}"))?
            }
            "--inject-wall" => {
                args.inject = Some(
                    val("--inject-wall")?
                        .parse()
                        .map_err(|e| format!("--inject-wall: {e}"))?,
                )
            }
            "--no-append" => args.append = false,
            "--serve" => args.serve = Some(val("--serve")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn read_doc(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Json::parse(&text).ok_or_else(|| format!("{path} is not valid JSON"))
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn append_history(history: &str, line: &str) {
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history)
        .and_then(|mut f| writeln!(f, "{line}"))
    {
        Ok(()) => println!("appended run to {history}"),
        Err(e) => eprintln!("bench_check: warning: could not append {history}: {e}"),
    }
}

/// `--serve` mode: validate a `BENCH_serve.json` report and append its
/// history line. No baseline comparison — the figures are
/// machine-bound; only self-contradiction fails.
fn run_serve_mode(path: &str, args: &Args) {
    let doc = match read_doc(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_check: {e}");
            std::process::exit(2);
        }
    };
    if args.append {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        append_history(&args.history, &serve_history_line(&doc, &git_rev(), secs));
    }
    let violations = validate_serve(&doc);
    println!("bench_check: validating serve report {path}");
    if violations.is_empty() {
        println!("OK: serve report well-formed");
        return;
    }
    eprintln!("FAIL: {} problem(s) in {path}:", violations.len());
    for v in &violations {
        eprintln!("  {v}");
    }
    std::process::exit(1);
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_check: {e}");
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.serve {
        run_serve_mode(path, &args);
        return;
    }
    let current = match read_doc(&args.current) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_check: {e}");
            std::process::exit(2);
        }
    };
    let baseline = match read_doc(&args.baseline) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_check: {e}");
            std::process::exit(2);
        }
    };

    if args.append {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        append_history(&args.history, &history_line(&current, &git_rev(), secs));
    }

    let current = match args.inject {
        Some(factor) => {
            println!("injecting artificial wall regression: x{factor}");
            inject_wall(current, factor)
        }
        None => current,
    };

    let violations = compare(&current, &baseline, &args.tol);
    println!(
        "bench_check: {} vs {} (wall tolerance +{:.0}%, ratio -{:.0}%)",
        args.current,
        args.baseline,
        100.0 * args.tol.wall_tol,
        100.0 * args.tol.ratio_tol
    );
    if violations.is_empty() {
        println!("OK: no regressions");
        return;
    }
    eprintln!("FAIL: {} regression(s):", violations.len());
    for v in &violations {
        eprintln!("  {v}");
    }
    std::process::exit(1);
}
