//! Emits `BENCH_serve.json`: throughput and latency figures for the
//! `lip_serve` front end, cold vs warm.
//!
//! Both legs drive the same stencil kernel through a freshly spawned
//! in-process server with several concurrent TCP clients:
//!
//! - **cold** — every request submits a distinct program (unique
//!   subroutine name), so each one pays the full parse + analyze
//!   pipeline before executing;
//! - **warm** — every request submits byte-identical source, so after
//!   the first the shard's parse and analysis caches hit and the
//!   request goes straight to execution.
//!
//! The warm/cold throughput ratio is the amortization the
//! analysis-as-a-service design exists to sell; the ROADMAP tracks it.
//! Latency quantiles are exact (client-side, sorted), not histogram
//! buckets. `LIP_BENCH_MS` scales the request count the same way it
//! scales the other benches' sample budgets.
//!
//! ```sh
//! cargo run --release -p lip_bench --bin bench_serve   # writes ./BENCH_serve.json
//! LIP_BENCH_MS=20 cargo run --release -p lip_bench --bin bench_serve
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use lip_obs::json::Json;
use lip_serve::protocol::Client;
use lip_serve::{ServeConfig, Server};

/// Schema version of `BENCH_serve.json`.
const SCHEMA_VERSION: u32 = 1;
const CLIENTS: usize = 4;
const KERNEL_N: usize = 64;

fn budget_ms() -> u64 {
    std::env::var("LIP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200)
        .max(1)
}

/// The stencil kernel under a caller-chosen subroutine name (unique
/// names are what makes the cold leg cold).
fn program(sub: &str) -> String {
    format!(
        "\nSUBROUTINE {sub}(UNEW, U, V, N)\n  DIMENSION UNEW(*), U(*), V(*)\n  INTEGER i, N\n  \
         DO sweep i = 1, N\n    UNEW(i) = 0.25 * (U(i) + V(i)) + 0.5 * U(i)\n  ENDDO\nEND\n"
    )
}

fn request(sub: &str) -> String {
    let n = KERNEL_N;
    let data: Vec<String> = (0..n).map(|i| format!("{}", (i % 11) as f64)).collect();
    let data = data.join(", ");
    format!(
        "{{\"type\": \"run\", \"program\": {}, \"sub\": \"{sub}\", \"loop\": \"sweep\", \
         \"frame\": {{\"scalars\": {{\"N\": {n}}}, \"arrays\": {{\"UNEW\": {{\"len\": {n}}}, \
         \"U\": {{\"data\": [{data}]}}, \"V\": {{\"data\": [{data}]}}}}}}, \
         \"results\": [\"UNEW\"]}}",
        lip_obs::json_str(&program(sub)),
    )
}

struct Leg {
    name: &'static str,
    requests: usize,
    wall_ns: f64,
    throughput_rps: f64,
    p50_ns: u64,
    p99_ns: u64,
    cache_hit_rate: f64,
}

/// Runs one leg against a fresh server; `payloads[i]` is request `i`'s
/// body, dealt round-robin to the client threads.
fn run_leg(name: &'static str, payloads: Vec<String>) -> Leg {
    let requests = payloads.len();
    let server = Server::spawn(ServeConfig::default()).expect("bind server");
    let addr = server.addr();
    let mut per_client: Vec<Vec<String>> = (0..CLIENTS).map(|_| Vec::new()).collect();
    for (i, p) in payloads.into_iter().enumerate() {
        per_client[i % CLIENTS].push(p);
    }

    let started = Instant::now();
    let handles: Vec<_> = per_client
        .into_iter()
        .map(|mine| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lat = Vec::with_capacity(mine.len());
                for payload in &mine {
                    let t = Instant::now();
                    let reply = client.call(payload).expect("round trip");
                    lat.push(t.elapsed().as_nanos() as u64);
                    assert_eq!(
                        reply.get("type").and_then(Json::as_str),
                        Some("ok"),
                        "bench request failed: {reply:?}"
                    );
                }
                lat
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let wall_ns = started.elapsed().as_nanos() as f64;

    let mut probe = Client::connect(addr).expect("connect");
    let stats = probe.call("{\"type\": \"stats\"}").expect("stats");
    let cache_hit_rate = stats
        .get("cache_hit_rate")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    server.shutdown();

    latencies.sort_unstable();
    let quant = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize];
    Leg {
        name,
        requests,
        wall_ns,
        throughput_rps: requests as f64 / (wall_ns / 1e9),
        p50_ns: quant(0.50),
        p99_ns: quant(0.99),
        cache_hit_rate,
    }
}

fn leg_json(leg: &Leg) -> String {
    format!(
        "{{\"leg\": \"{}\", \"requests\": {}, \"wall_ns\": {:.0}, \
         \"throughput_rps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"cache_hit_rate\": {:.4}}}",
        leg.name,
        leg.requests,
        leg.wall_ns,
        leg.throughput_rps,
        leg.p50_ns,
        leg.p99_ns,
        leg.cache_hit_rate
    )
}

fn main() {
    let ms = budget_ms();
    let requests = (ms as usize).clamp(16, 256);

    let cold_payloads: Vec<String> = (0..requests)
        .map(|i| request(&format!("calc{i}")))
        .collect();
    let cold = run_leg("cold", cold_payloads);
    let warm_payloads: Vec<String> = (0..requests).map(|_| request("calc")).collect();
    let warm = run_leg("warm", warm_payloads);

    let ratio = warm.throughput_rps / cold.throughput_rps;
    for leg in [&cold, &warm] {
        println!(
            "{:>4}: {} requests in {:.2} ms — {:.0} req/s, p50 {:.1} µs, p99 {:.1} µs, \
             cache hit rate {:.2}",
            leg.name,
            leg.requests,
            leg.wall_ns / 1e6,
            leg.throughput_rps,
            leg.p50_ns as f64 / 1e3,
            leg.p99_ns as f64 / 1e3,
            leg.cache_hit_rate
        );
    }
    println!("warm/cold throughput: {ratio:.2}x");

    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(
        out,
        "  \"meta\": {{\"schema_version\": {SCHEMA_VERSION}, \"bench\": \"serve\", \
         \"pool\": {}, \"clients\": {CLIENTS}, \"requests_per_leg\": {requests}, \
         \"kernel_n\": {KERNEL_N}, \"sample_budget_ms\": {ms}}},",
        ServeConfig::default().pool
    )
    .unwrap();
    writeln!(out, "  \"legs\": [").unwrap();
    writeln!(out, "    {},", leg_json(&cold)).unwrap();
    writeln!(out, "    {}", leg_json(&warm)).unwrap();
    writeln!(out, "  ],").unwrap();
    writeln!(out, "  \"warm_over_cold_throughput\": {ratio:.3}").unwrap();
    writeln!(out, "}}").unwrap();

    Json::parse(&out).expect("emitted report must be valid JSON");
    std::fs::write("BENCH_serve.json", &out).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
