//! Regenerates Figure 13: scalability up to 16 processors,
//! SPEC2000/2006.
fn main() {
    let session = lip_bench::harness_session();
    lip_bench::print_scalability(
        &session,
        "Figure 13: SPEC2000/2006 scalability",
        lip_suite::SPEC2006,
        &[1, 2, 4, 8, 16],
    );
}
