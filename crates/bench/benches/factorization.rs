//! Criterion micro-benchmarks: compile-time cost of the factorization
//! pipeline and runtime cost of predicate evaluation vs exact USR
//! evaluation (the paper's core overhead claim: predicates are orders
//! of magnitude cheaper than evaluating the independence USR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lip_core::{build_cascade, Factorizer};
use lip_lmad::{Lmad, LmadSet};
use lip_symbolic::{sym, BoolExpr, MapCtx, RangeEnv, SymExpr};
use lip_usr::{eval_usr, output_independence, Usr};

fn window_oind(n: i64) -> (Usr, MapCtx) {
    let v = |s: &str| SymExpr::var(sym(s));
    let wf = Usr::leaf(LmadSet::single(Lmad::interval(
        SymExpr::elem(sym("B"), v("i")),
        SymExpr::elem(sym("B"), v("i")) + v("L") - SymExpr::konst(1),
    )));
    let oind = output_independence(sym("i"), &SymExpr::konst(1), &v("N"), &wf);
    let mut ctx = MapCtx::new();
    ctx.set_scalar(sym("N"), n).set_scalar(sym("L"), 4);
    ctx.set_array(sym("B"), 1, (0..n).map(|k| k * 4 + 1).collect());
    (oind, ctx)
}

fn bench_factorization(c: &mut Criterion) {
    let (oind, _) = window_oind(64);
    c.bench_function("factor_monotone_oind", |b| {
        b.iter(|| {
            let mut f = Factorizer::with_defaults();
            std::hint::black_box(f.factor(&oind))
        })
    });
    c.bench_function("cascade_build", |b| {
        let mut f = Factorizer::with_defaults();
        let p = f.factor(&oind);
        let env =
            RangeEnv::new().with_fact(BoolExpr::ge0(SymExpr::var(sym("N")) - SymExpr::konst(1)));
        b.iter(|| std::hint::black_box(build_cascade(&p, &env)))
    });
}

fn bench_predicate_vs_usr_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_test");
    for n in [64i64, 512, 4096] {
        let (oind, ctx) = window_oind(n);
        let mut f = Factorizer::with_defaults();
        let pred = f.factor(&oind);
        let env = RangeEnv::new();
        let cascade = build_cascade(&pred, &env);
        group.bench_with_input(BenchmarkId::new("predicate_cascade", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(cascade.first_success(&ctx, 10_000_000)))
        });
        group.bench_with_input(BenchmarkId::new("exact_usr_eval", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(eval_usr(&oind, &ctx, 10_000_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_factorization, bench_predicate_vs_usr_eval);
criterion_main!(benches);
