//! Ablation benches for the design choices DESIGN.md calls out:
//! (a) USR reshaping on/off, (b) monotonicity rule on/off,
//! (c) invariant hoisting via simplification on/off (simplify vs raw).

use criterion::{criterion_group, criterion_main, Criterion};
use lip_analysis::{analyze_loop, AnalysisConfig};
use lip_core::FactorConfig;
use lip_symbolic::sym;
use lip_usr::ReshapeConfig;

fn analyze_with(cfg: &AnalysisConfig) -> lip_analysis::LoopAnalysis {
    let p = lip_suite::MONOTONE_WINDOWS.prepared(64);
    let prog = p.machine.program().clone();
    analyze_loop(&prog, sym(p.sub), p.label, cfg).expect("analyzed")
}

fn bench_ablation_monotonicity(c: &mut Criterion) {
    c.bench_function("analysis_mono_on", |b| {
        b.iter(|| std::hint::black_box(analyze_with(&AnalysisConfig::default())))
    });
    c.bench_function("analysis_mono_off", |b| {
        let cfg = AnalysisConfig {
            factor: FactorConfig {
                monotonicity: false,
                ..FactorConfig::default()
            },
            ..AnalysisConfig::default()
        };
        b.iter(|| std::hint::black_box(analyze_with(&cfg)))
    });
}

fn bench_ablation_reshape(c: &mut Criterion) {
    c.bench_function("analysis_reshape_on", |b| {
        b.iter(|| std::hint::black_box(analyze_with(&AnalysisConfig::default())))
    });
    c.bench_function("analysis_reshape_off", |b| {
        let cfg = AnalysisConfig {
            reshape: ReshapeConfig {
                reassociate_subtraction: false,
                umeg: false,
            },
            ..AnalysisConfig::default()
        };
        b.iter(|| std::hint::black_box(analyze_with(&cfg)))
    });
}

criterion_group!(benches, bench_ablation_monotonicity, bench_ablation_reshape);
criterion_main!(benches);
