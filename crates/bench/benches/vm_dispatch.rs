//! Interpreter-vs-VM dispatch on the hot suite kernels.
//!
//! Each kernel's target loop executes end-to-end (bounds evaluation +
//! every iteration) through the tree-walk interpreter and through the
//! compiled bytecode VM; compilation happens once outside the timed
//! region, mirroring how the executor amortizes it across a loop's
//! iterations. Both backends produce identical work-unit counts — the
//! wall-clock ratio is pure dispatch overhead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lip_bench::vm_hot_kernels;
use lip_ir::ExecState;
use lip_symbolic::sym;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_dispatch");
    for (shape, n) in vm_hot_kernels() {
        let mut p = shape.prepared(n);
        let prog = p.machine.program().clone();
        let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
        let target = sub.find_loop(p.label).expect("loop").clone();

        group.bench_with_input(BenchmarkId::new(shape.name, "treewalk"), &(), |b, ()| {
            b.iter(|| {
                let mut st = ExecState::default();
                p.machine
                    .exec_stmt(&sub, &mut p.frame, &target, &mut st)
                    .expect("interp");
                black_box(st.cost)
            })
        });

        let q = shape.prepared(n);
        let mut compiled = lip_vm::compile_program(&prog).expect("compiles");
        let block = lip_vm::add_block(&mut compiled, &sub, std::slice::from_ref(&target), &[])
            .expect("block compiles");
        let vm = lip_vm::Vm::for_machine(&compiled, &q.machine);
        let chunk = &compiled.block(block).chunk;
        let mut frame = lip_vm::Frame::for_chunk(chunk, &q.frame);
        group.bench_with_input(BenchmarkId::new(shape.name, "bytecode"), &(), |b, ()| {
            b.iter(|| {
                let mut st = ExecState::default();
                vm.run_block(block, &mut frame, &mut st, None).expect("vm");
                black_box(st.cost)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
