//! Unit/property tests for USR reshaping (paper §3.4, Figure 8): the
//! rewrites must reorganize the DAG without ever changing the denoted
//! set, and the subtraction reassociation must actually produce the
//! `A − (B ∪ C)` shape predicate extraction wants.

use lip_usr::{eval_usr, reshape, Lmad, LmadSet, ReshapeConfig, Usr, UsrNode};

use lip_symbolic::{sym, BoolExpr, MapCtx, SymExpr};
use proptest::prelude::*;

fn k(c: i64) -> SymExpr {
    SymExpr::konst(c)
}

fn iv(lo: i64, hi: i64) -> Usr {
    Usr::leaf(LmadSet::single(Lmad::interval(k(lo), k(hi))))
}

/// Builds one of the three binary set operations by code.
fn bin(op: u8, a: Usr, b: Usr) -> Usr {
    match op % 3 {
        0 => Usr::union(a, b),
        1 => Usr::intersect(a, b),
        _ => Usr::subtract(a, b),
    }
}

#[test]
fn reassociation_produces_union_shape() {
    // (A − B) − C  →  A − (B ∪ C).
    let u = Usr::subtract(Usr::subtract(iv(0, 9), iv(2, 3)), iv(5, 6));
    let r = reshape(&u, ReshapeConfig::default());
    match r.node() {
        UsrNode::Subtract(a, bc) => {
            assert_eq!(a, &iv(0, 9));
            assert!(
                matches!(bc.node(), UsrNode::Leaf(_) | UsrNode::Union(..)),
                "subtrahend must be the (possibly leaf-merged) union B ∪ C, got {bc:?}"
            );
        }
        other => panic!("expected Subtract at the root, got {other:?}"),
    }
    let ctx = MapCtx::new();
    assert_eq!(
        eval_usr(&u, &ctx, 1_000).unwrap(),
        eval_usr(&r, &ctx, 1_000).unwrap()
    );
}

#[test]
fn disabled_config_is_identity() {
    let cfg = ReshapeConfig {
        reassociate_subtraction: false,
        umeg: false,
    };
    let u = Usr::subtract(Usr::subtract(iv(0, 9), iv(2, 3)), iv(5, 6));
    assert_eq!(reshape(&u, cfg), u);
}

#[test]
fn rec_total_enumerates_the_union() {
    // ∪_{i=1}^{3} {2i} = {2, 4, 6}.
    let i = sym("rt_i");
    let body = Usr::leaf(LmadSet::single(Lmad::interval(
        SymExpr::var(i).scale(2),
        SymExpr::var(i).scale(2),
    )));
    let u = Usr::rec_total(i, k(1), k(3), body);
    let ctx = MapCtx::new();
    let got = eval_usr(&u, &ctx, 1_000).unwrap();
    assert_eq!(got.into_iter().collect::<Vec<_>>(), vec![2, 4, 6]);
}

#[test]
fn umeg_distribution_preserves_gated_semantics() {
    // X = g·A ∪ ¬g·B, Y = g·C ∪ ¬g·D: reshape may distribute X − Y
    // inside the gates; the denoted set must match for g true & false.
    let gsym = sym("um_g");
    let g = BoolExpr::gt0(SymExpr::var(gsym));
    let x = Usr::union(
        Usr::gate(g.clone(), iv(0, 9)),
        Usr::gate(g.clone().negate(), iv(10, 19)),
    );
    let y = Usr::union(
        Usr::gate(g.clone(), iv(4, 9)),
        Usr::gate(g.negate(), iv(10, 14)),
    );
    let u = Usr::subtract(x, y);
    let r = reshape(&u, ReshapeConfig::default());
    for gv in [-1i64, 1] {
        let mut ctx = MapCtx::new();
        ctx.set_scalar(gsym, gv);
        assert_eq!(
            eval_usr(&u, &ctx, 1_000).unwrap(),
            eval_usr(&r, &ctx, 1_000).unwrap(),
            "mismatch for g = {gv}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Reshaping any small subtract/union/intersect tree preserves the
    /// denoted set exactly.
    #[test]
    fn reshape_roundtrips_random_trees(
        a_lo in 0i64..16, a_len in 0i64..10,
        b_lo in 0i64..16, b_len in 0i64..10,
        c_lo in 0i64..16, c_len in 0i64..10,
        d_lo in 0i64..16, d_len in 0i64..10,
        op1 in 0u8..3, op2 in 0u8..3, op3 in 0u8..3,
        shape in 0u8..2,
    ) {
        let (a, b) = (iv(a_lo, a_lo + a_len), iv(b_lo, b_lo + b_len));
        let (c, d) = (iv(c_lo, c_lo + c_len), iv(d_lo, d_lo + d_len));
        // Two tree shapes: ((A·B)·C)·D and (A·B)·(C·D).
        let u = if shape == 0 {
            bin(op3, bin(op2, bin(op1, a, b), c), d)
        } else {
            bin(op3, bin(op1, a, b), bin(op2, c, d))
        };
        let r = reshape(&u, ReshapeConfig::default());
        let ctx = MapCtx::new();
        let before = eval_usr(&u, &ctx, 10_000).unwrap();
        let after = eval_usr(&r, &ctx, 10_000).unwrap();
        prop_assert_eq!(before, after);
    }

    /// Gated random trees: reshaping must stay exact whatever the gate
    /// values turn out to be at runtime.
    #[test]
    fn reshape_roundtrips_gated_trees(
        a_lo in 0i64..12, a_len in 0i64..8,
        b_lo in 0i64..12, b_len in 0i64..8,
        c_lo in 0i64..12, c_len in 0i64..8,
        op1 in 0u8..3, op2 in 0u8..3,
        g1 in -1i64..2, g2 in -1i64..2,
    ) {
        let (s1, s2) = (sym("rg_g1"), sym("rg_g2"));
        let p1 = BoolExpr::gt0(SymExpr::var(s1));
        let p2 = BoolExpr::gt0(SymExpr::var(s2));
        let u = bin(
            op2,
            Usr::gate(p1, bin(op1, iv(a_lo, a_lo + a_len), iv(b_lo, b_lo + b_len))),
            Usr::gate(p2, iv(c_lo, c_lo + c_len)),
        );
        let r = reshape(&u, ReshapeConfig::default());
        let mut ctx = MapCtx::new();
        ctx.set_scalar(s1, g1).set_scalar(s2, g2);
        let before = eval_usr(&u, &ctx, 10_000).unwrap();
        let after = eval_usr(&r, &ctx, 10_000).unwrap();
        prop_assert_eq!(before, after, "gates g1={}, g2={}", g1, g2);
    }
}
