//! The USR DAG and its simplifying smart constructors.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use lip_lmad::LmadSet;
use lip_symbolic::{BoolExpr, Sym, SymExpr};

/// Identifies an unanalyzable call site (paper's `./ CallSite` nodes).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CallSiteId {
    /// The callee's name.
    pub callee: Sym,
    /// A site-unique index within the caller.
    pub site: u32,
}

impl fmt::Display for CallSiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.callee, self.site)
    }
}

/// One node of the USR DAG. Use the [`Usr`] smart constructors; the node
/// type is exposed for pattern matching in the factorization algorithm.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum UsrNode {
    /// The empty set `∅`.
    Empty,
    /// A set of LMADs (exact leaf).
    Leaf(LmadSet),
    /// `S1 ∪ S2` (irreducible).
    Union(Usr, Usr),
    /// `S1 ∩ S2` (irreducible).
    Intersect(Usr, Usr),
    /// `S1 − S2` (irreducible).
    Subtract(Usr, Usr),
    /// `p # S`: `S` exists only when `p` holds.
    Gate(BoolExpr, Usr),
    /// A summary that could not be translated across a call site.
    Call(CallSiteId, Usr),
    /// Total recurrence `∪_{var=lo}^{hi} body(var)`.
    RecTotal {
        /// Bound recurrence variable.
        var: Sym,
        /// Inclusive lower bound.
        lo: SymExpr,
        /// Inclusive upper bound.
        hi: SymExpr,
        /// Per-iteration body, parametrized by `var`.
        body: Usr,
    },
    /// Partial recurrence `∪_{var=lo}^{hi} body(var)` where `hi` mentions
    /// an enclosing recurrence variable (typically `i−1`).
    RecPartial {
        /// Bound recurrence variable (fresh, per the paper's Fig. 3).
        var: Sym,
        /// Inclusive lower bound.
        lo: SymExpr,
        /// Inclusive upper bound (loop-variant).
        hi: SymExpr,
        /// Per-iteration body, parametrized by `var`.
        body: Usr,
    },
}

/// A reference-counted USR with structural equality and simplifying
/// constructors.
///
/// # Example
///
/// ```
/// use lip_usr::Usr;
/// use lip_lmad::{Lmad, LmadSet};
/// use lip_symbolic::{sym, SymExpr, BoolExpr};
///
/// let a = Usr::leaf(LmadSet::single(Lmad::interval(
///     SymExpr::konst(0),
///     SymExpr::var(sym("NS")) - SymExpr::konst(1),
/// )));
/// // Gating with `false` collapses to the empty set.
/// assert!(Usr::gate(BoolExpr::f(), a).is_empty());
/// ```
#[derive(Clone, Eq, Debug)]
pub struct Usr(Rc<UsrNode>);

impl PartialEq for Usr {
    fn eq(&self, other: &Usr) -> bool {
        Rc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Hash for Usr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl Usr {
    /// The empty set.
    pub fn empty() -> Usr {
        Usr(Rc::new(UsrNode::Empty))
    }

    /// An exact LMAD-set leaf (an empty set collapses to [`Usr::empty`]).
    pub fn leaf(set: LmadSet) -> Usr {
        if set.is_empty() {
            Usr::empty()
        } else {
            Usr(Rc::new(UsrNode::Leaf(set)))
        }
    }

    /// `a ∪ b` with unit/idempotence simplification; unions of leaves are
    /// computed exactly in the LMAD domain.
    pub fn union(a: Usr, b: Usr) -> Usr {
        match (&*a.0, &*b.0) {
            (UsrNode::Empty, _) => b,
            (_, UsrNode::Empty) => a,
            (UsrNode::Leaf(x), UsrNode::Leaf(y)) => Usr::leaf(x.union(y)),
            _ if a == b => a,
            _ => Usr(Rc::new(UsrNode::Union(a, b))),
        }
    }

    /// N-ary union.
    pub fn union_all<I: IntoIterator<Item = Usr>>(parts: I) -> Usr {
        parts.into_iter().fold(Usr::empty(), Usr::union)
    }

    /// `a ∩ b` with zero/idempotence simplification.
    pub fn intersect(a: Usr, b: Usr) -> Usr {
        match (&*a.0, &*b.0) {
            (UsrNode::Empty, _) | (_, UsrNode::Empty) => Usr::empty(),
            _ if a == b => a,
            _ => Usr(Rc::new(UsrNode::Intersect(a, b))),
        }
    }

    /// `a − b` with zero/idempotence simplification.
    pub fn subtract(a: Usr, b: Usr) -> Usr {
        match (&*a.0, &*b.0) {
            (UsrNode::Empty, _) => Usr::empty(),
            (_, UsrNode::Empty) => a,
            _ if a == b => Usr::empty(),
            _ => Usr(Rc::new(UsrNode::Subtract(a, b))),
        }
    }

    /// `p # s`: constant gates fold; nested gates merge conjunctively.
    pub fn gate(p: BoolExpr, s: Usr) -> Usr {
        if p.is_true() {
            return s;
        }
        if p.is_false() || s.is_empty() {
            return Usr::empty();
        }
        if let UsrNode::Gate(q, inner) = &*s.0 {
            let merged = BoolExpr::and(vec![p, q.clone()]);
            return Usr::gate(merged, inner.clone());
        }
        Usr(Rc::new(UsrNode::Gate(p, s)))
    }

    /// Wraps a summary that cannot be translated across `site`.
    pub fn call(site: CallSiteId, body: Usr) -> Usr {
        if body.is_empty() {
            Usr::empty()
        } else {
            Usr(Rc::new(UsrNode::Call(site, body)))
        }
    }

    /// Total recurrence `∪_{var=lo}^{hi} body`, with exact collapses:
    /// an empty body stays empty; a `var`-invariant body becomes the body
    /// gated by range non-emptiness; a leaf body that aggregates exactly
    /// in the LMAD domain becomes a leaf; `var`-invariant gates hoist out.
    pub fn rec_total(var: Sym, lo: SymExpr, hi: SymExpr, body: Usr) -> Usr {
        if body.is_empty() {
            return Usr::empty();
        }
        if !body.contains_sym(var) {
            return Usr::gate(BoolExpr::le(lo, hi), body);
        }
        if let UsrNode::Gate(p, inner) = &*body.0 {
            if !p.contains_sym(var) {
                return Usr::gate(p.clone(), Usr::rec_total(var, lo, hi, inner.clone()));
            }
        }
        if let UsrNode::Leaf(set) = &*body.0 {
            if let Some(agg) = set.aggregate(var, &lo, &hi) {
                return Usr::gate(BoolExpr::le(lo, hi), Usr::leaf(agg));
            }
        }
        // Unions distribute through recurrences exactly.
        if let UsrNode::Union(x, y) = &*body.0 {
            let (x, y) = (x.clone(), y.clone());
            return Usr::union(
                Usr::rec_total(var, lo.clone(), hi.clone(), x),
                Usr::rec_total(var, lo, hi, y),
            );
        }
        Usr(Rc::new(UsrNode::RecTotal { var, lo, hi, body }))
    }

    /// Partial recurrence (same simplifications as [`Usr::rec_total`]).
    pub fn rec_partial(var: Sym, lo: SymExpr, hi: SymExpr, body: Usr) -> Usr {
        if body.is_empty() {
            return Usr::empty();
        }
        if !body.contains_sym(var) {
            return Usr::gate(BoolExpr::le(lo, hi), body);
        }
        if let UsrNode::Leaf(set) = &*body.0 {
            if let Some(agg) = set.aggregate(var, &lo, &hi) {
                return Usr::gate(BoolExpr::le(lo, hi), Usr::leaf(agg));
            }
        }
        if let UsrNode::Union(x, y) = &*body.0 {
            let (x, y) = (x.clone(), y.clone());
            return Usr::union(
                Usr::rec_partial(var, lo.clone(), hi.clone(), x),
                Usr::rec_partial(var, lo, hi, y),
            );
        }
        Usr(Rc::new(UsrNode::RecPartial { var, lo, hi, body }))
    }

    /// The underlying node, for pattern matching.
    pub fn node(&self) -> &UsrNode {
        &self.0
    }

    /// A stable identity for memoization tables.
    pub fn id(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// Whether this is syntactically the empty set.
    pub fn is_empty(&self) -> bool {
        matches!(&*self.0, UsrNode::Empty)
    }

    /// Whether the symbol `s` occurs anywhere (bound recurrence variables
    /// shadow: occurrences of a recurrence's own variable inside its body
    /// do not count as free).
    pub fn contains_sym(&self, s: Sym) -> bool {
        match &*self.0 {
            UsrNode::Empty => false,
            UsrNode::Leaf(set) => set.contains_sym(s),
            UsrNode::Union(a, b) | UsrNode::Intersect(a, b) | UsrNode::Subtract(a, b) => {
                a.contains_sym(s) || b.contains_sym(s)
            }
            UsrNode::Gate(p, body) => p.contains_sym(s) || body.contains_sym(s),
            UsrNode::Call(_, body) => body.contains_sym(s),
            UsrNode::RecTotal { var, lo, hi, body } | UsrNode::RecPartial { var, lo, hi, body } => {
                lo.contains_sym(s) || hi.contains_sym(s) || (*var != s && body.contains_sym(s))
            }
        }
    }

    /// All free symbols.
    pub fn free_syms(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut out);
        out
    }

    fn collect_free(&self, out: &mut BTreeSet<Sym>) {
        match &*self.0 {
            UsrNode::Empty => {}
            UsrNode::Leaf(set) => out.extend(set.syms()),
            UsrNode::Union(a, b) | UsrNode::Intersect(a, b) | UsrNode::Subtract(a, b) => {
                a.collect_free(out);
                b.collect_free(out);
            }
            UsrNode::Gate(p, body) => {
                out.extend(p.syms());
                body.collect_free(out);
            }
            UsrNode::Call(_, body) => body.collect_free(out),
            UsrNode::RecTotal { var, lo, hi, body } | UsrNode::RecPartial { var, lo, hi, body } => {
                out.extend(lo.syms());
                out.extend(hi.syms());
                let mut inner = BTreeSet::new();
                body.collect_free(&mut inner);
                inner.remove(var);
                out.extend(inner);
            }
        }
    }

    /// Substitutes `with` for free occurrences of variable `s`.
    pub fn subst(&self, s: Sym, with: &SymExpr) -> Usr {
        if !self.contains_sym(s) {
            return self.clone();
        }
        match &*self.0 {
            UsrNode::Empty => Usr::empty(),
            UsrNode::Leaf(set) => Usr::leaf(set.subst(s, with)),
            UsrNode::Union(a, b) => Usr::union(a.subst(s, with), b.subst(s, with)),
            UsrNode::Intersect(a, b) => Usr::intersect(a.subst(s, with), b.subst(s, with)),
            UsrNode::Subtract(a, b) => Usr::subtract(a.subst(s, with), b.subst(s, with)),
            UsrNode::Gate(p, body) => Usr::gate(p.subst(s, with), body.subst(s, with)),
            UsrNode::Call(site, body) => Usr::call(*site, body.subst(s, with)),
            UsrNode::RecTotal { var, lo, hi, body } => {
                let body = if *var == s {
                    body.clone()
                } else {
                    body.subst(s, with)
                };
                Usr::rec_total(*var, lo.subst(s, with), hi.subst(s, with), body)
            }
            UsrNode::RecPartial { var, lo, hi, body } => {
                let body = if *var == s {
                    body.clone()
                } else {
                    body.subst(s, with)
                };
                Usr::rec_partial(*var, lo.subst(s, with), hi.subst(s, with), body)
            }
        }
    }

    /// Renames the bound variable of a recurrence body: returns the body
    /// of this node with `from` substituted by the variable `to`.
    pub fn rename_bound(&self, from: Sym, to: Sym) -> Usr {
        self.subst(from, &SymExpr::var(to))
    }

    /// Node count (DAG nodes counted once).
    pub fn size(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.size_inner(&mut seen)
    }

    fn size_inner(&self, seen: &mut std::collections::HashSet<usize>) -> usize {
        if !seen.insert(self.id()) {
            return 0;
        }
        1 + match &*self.0 {
            UsrNode::Empty | UsrNode::Leaf(_) => 0,
            UsrNode::Union(a, b) | UsrNode::Intersect(a, b) | UsrNode::Subtract(a, b) => {
                a.size_inner(seen) + b.size_inner(seen)
            }
            UsrNode::Gate(_, body) | UsrNode::Call(_, body) => body.size_inner(seen),
            UsrNode::RecTotal { body, .. } | UsrNode::RecPartial { body, .. } => {
                body.size_inner(seen)
            }
        }
    }
}

impl fmt::Display for Usr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0 {
            UsrNode::Empty => write!(f, "{{}}"),
            UsrNode::Leaf(set) => write!(f, "{set}"),
            UsrNode::Union(a, b) => write!(f, "({a} u {b})"),
            UsrNode::Intersect(a, b) => write!(f, "({a} n {b})"),
            UsrNode::Subtract(a, b) => write!(f, "({a} - {b})"),
            UsrNode::Gate(p, body) => write!(f, "({p} # {body})"),
            UsrNode::Call(site, body) => write!(f, "(call {site}: {body})"),
            UsrNode::RecTotal { var, lo, hi, body } => {
                write!(f, "U[{var}={lo}..{hi}]({body})")
            }
            UsrNode::RecPartial { var, lo, hi, body } => {
                write!(f, "Upartial[{var}={lo}..{hi}]({body})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_lmad::Lmad;
    use lip_symbolic::sym;

    fn v(name: &str) -> SymExpr {
        SymExpr::var(sym(name))
    }

    fn k(c: i64) -> SymExpr {
        SymExpr::konst(c)
    }

    fn iv(lo: SymExpr, hi: SymExpr) -> Usr {
        Usr::leaf(LmadSet::single(Lmad::interval(lo, hi)))
    }

    #[test]
    fn unit_laws() {
        let a = iv(k(0), v("N"));
        assert_eq!(Usr::union(Usr::empty(), a.clone()), a);
        assert_eq!(Usr::union(a.clone(), Usr::empty()), a);
        assert!(Usr::intersect(Usr::empty(), a.clone()).is_empty());
        assert!(Usr::subtract(Usr::empty(), a.clone()).is_empty());
        assert_eq!(Usr::subtract(a.clone(), Usr::empty()), a);
        assert!(Usr::subtract(a.clone(), a.clone()).is_empty());
        assert_eq!(Usr::intersect(a.clone(), a.clone()), a);
    }

    #[test]
    fn leaf_union_is_exact() {
        let a = iv(k(0), k(5));
        let b = iv(k(10), k(15));
        let u = Usr::union(a, b);
        assert!(matches!(u.node(), UsrNode::Leaf(s) if s.lmads().len() == 2));
    }

    #[test]
    fn gate_folding() {
        let a = iv(k(0), k(5));
        assert_eq!(Usr::gate(BoolExpr::t(), a.clone()), a);
        assert!(Usr::gate(BoolExpr::f(), a.clone()).is_empty());
        // Nested gates merge.
        let g1 = BoolExpr::ne(v("SYM"), k(1));
        let g2 = BoolExpr::gt0(v("NP"));
        let nested = Usr::gate(g1.clone(), Usr::gate(g2.clone(), a));
        match nested.node() {
            UsrNode::Gate(p, _) => {
                assert_eq!(*p, BoolExpr::and(vec![g1, g2]));
            }
            other => panic!("expected gate, got {other:?}"),
        }
    }

    #[test]
    fn rec_total_aggregates_leaf() {
        // ∪_{i=1..N} {32(i-1)} = [32]v[32(N-1)]+0 gated on 1<=N.
        let body = Usr::leaf(LmadSet::single(Lmad::point((v("i") - k(1)).scale(32))));
        let agg = Usr::rec_total(sym("i"), k(1), v("N"), body);
        match agg.node() {
            UsrNode::Gate(p, inner) => {
                assert_eq!(*p, BoolExpr::le(k(1), v("N")));
                assert!(matches!(inner.node(), UsrNode::Leaf(_)));
            }
            other => panic!("expected gated leaf, got {other:?}"),
        }
    }

    #[test]
    fn rec_total_invariant_body_hoists() {
        let body = iv(k(0), v("M"));
        let agg = Usr::rec_total(sym("i"), k(1), v("N"), body.clone());
        match agg.node() {
            UsrNode::Gate(p, inner) => {
                assert_eq!(*p, BoolExpr::le(k(1), v("N")));
                assert_eq!(*inner, body);
            }
            other => panic!("expected gate, got {other:?}"),
        }
    }

    #[test]
    fn rec_total_keeps_irreducible_bodies() {
        // Triangular span prevents aggregation.
        let body = iv(k(0), v("i"));
        let agg = Usr::rec_total(sym("i"), k(1), v("N"), body);
        assert!(matches!(agg.node(), UsrNode::RecTotal { .. }));
    }

    #[test]
    fn rec_var_is_bound() {
        let body = iv(k(0), v("i"));
        let agg = Usr::rec_total(sym("i"), k(1), v("N"), body);
        assert!(!agg.free_syms().contains(&sym("i")));
        assert!(agg.free_syms().contains(&sym("N")));
        // Substituting the bound var is a no-op on the body.
        let same = agg.subst(sym("i"), &k(7));
        assert_eq!(same, agg);
    }

    #[test]
    fn subst_into_gate_and_leaf() {
        let u = Usr::gate(BoolExpr::gt0(v("i")), iv(v("i"), v("i") + k(3)));
        let r = u.subst(sym("i"), &k(2));
        match r.node() {
            UsrNode::Leaf(s) => {
                assert_eq!(s.lmads()[0], Lmad::interval(k(2), k(5)));
            }
            other => panic!("gate should fold to leaf after subst, got {other:?}"),
        }
    }

    #[test]
    fn union_distributes_through_recurrence() {
        let body = Usr::union(
            iv(v("i"), v("i")),
            Usr::gate(BoolExpr::gt0(v("c") - v("i")), iv(k(0), v("i"))),
        );
        let agg = Usr::rec_total(sym("i"), k(1), v("N"), body);
        // First component aggregates exactly; second stays a recurrence.
        assert!(matches!(agg.node(), UsrNode::Union(_, _)));
    }

    #[test]
    fn structural_equality_and_hash() {
        use std::collections::HashSet;
        let a = iv(k(0), v("N"));
        let b = iv(k(0), v("N"));
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn size_counts_dag_nodes_once() {
        let shared = iv(k(0), v("N"));
        // The leaf union merges exactly, so the left side is one leaf.
        let u = Usr::intersect(Usr::union(shared.clone(), iv(k(1), k(2))), shared.clone());
        // intersect + merged-union leaf + shared = 3.
        assert_eq!(u.size(), 3);
    }
}
