//! Loop independence as USR equations (paper §2.2).
//!
//! Given the per-iteration summaries `(WFi, ROi, RWi)` of an array in a
//! loop `i ∈ [lo, hi]`, loop independence holds when the corresponding
//! *independence USR* is empty:
//!
//! * **Output independence** (Eq. 2): no two iterations write-first the
//!   same location — `∪_i (WFi ∩ ∪_{k<i} WFk) = ∅`.
//! * **Flow/anti independence** (Eq. 3): no location is written by one
//!   iteration and read by another —
//!   `(∪WF ∩ ∪RO) ∪ (∪WF ∩ ∪RW) ∪ (∪RO ∩ ∪RW) ∪ ∪_i(RWi ∩ ∪_{k<i}RWk) = ∅`.
//! * **Static last value** (§4): the loop's whole WF set is covered by the
//!   last iteration's — `∪_i WFi − WF(hi) = ∅`.

use lip_symbolic::{Sym, SymExpr};

use crate::node::Usr;
use crate::summary::Summary;

/// The OIND-USR of Equation 2: `∪_{i}(WFi ∩ (∪_{k=lo}^{i-1} WFk))`.
pub fn output_independence(var: Sym, lo: &SymExpr, hi: &SymExpr, wf_i: &Usr) -> Usr {
    if wf_i.is_empty() {
        return Usr::empty();
    }
    let k = Sym::fresh(&format!("{var}k"));
    let prefix = Usr::rec_partial(
        k,
        lo.clone(),
        &SymExpr::var(var) - &SymExpr::konst(1),
        wf_i.rename_bound(var, k),
    );
    Usr::rec_total(
        var,
        lo.clone(),
        hi.clone(),
        Usr::intersect(wf_i.clone(), prefix),
    )
}

/// The FIND-USR of Equation 3 for the per-iteration summary `s`.
pub fn flow_independence(var: Sym, lo: &SymExpr, hi: &SymExpr, s: &Summary) -> Usr {
    let rec = |u: &Usr| Usr::rec_total(var, lo.clone(), hi.clone(), u.clone());
    let w = rec(&s.wf);
    let r = rec(&s.ro);
    let rw = rec(&s.rw);
    let t1 = Usr::intersect(w.clone(), r.clone());
    let t2 = Usr::intersect(w, rw.clone());
    let t3 = Usr::intersect(r, rw);
    let t4 = if s.rw.is_empty() {
        Usr::empty()
    } else {
        let k = Sym::fresh(&format!("{var}k"));
        let prefix = Usr::rec_partial(
            k,
            lo.clone(),
            &SymExpr::var(var) - &SymExpr::konst(1),
            s.rw.rename_bound(var, k),
        );
        Usr::rec_total(
            var,
            lo.clone(),
            hi.clone(),
            Usr::intersect(s.rw.clone(), prefix),
        )
    };
    Usr::union_all([t1, t2, t3, t4])
}

/// The static-last-value equation of §4: `∪_i (WFi) − WFi[i := hi]`.
/// Empty means the last iteration's write-first set covers the loop's, so
/// the final value of every written location comes from iteration `hi`.
pub fn slv_equation(var: Sym, lo: &SymExpr, hi: &SymExpr, wf_i: &Usr) -> Usr {
    let whole = Usr::rec_total(var, lo.clone(), hi.clone(), wf_i.clone());
    let last = wf_i.subst(var, hi);
    Usr::subtract(whole, last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::UsrNode;
    use lip_lmad::{Lmad, LmadSet};
    use lip_symbolic::{sym, BoolExpr};

    fn v(name: &str) -> SymExpr {
        SymExpr::var(sym(name))
    }

    fn k(c: i64) -> SymExpr {
        SymExpr::konst(c)
    }

    #[test]
    fn oind_of_invariant_writes_is_nontrivial() {
        // WF_i = [0, m] (invariant): iterations collide, OIND-USR is the
        // intersection of the set with itself over a non-empty prefix —
        // not syntactically empty (the loop is output dependent unless
        // privatized).
        let wf = Usr::leaf(LmadSet::single(Lmad::interval(k(0), v("m"))));
        let o = output_independence(sym("i"), &k(1), &v("N"), &wf);
        assert!(!o.is_empty());
    }

    #[test]
    fn oind_of_disjoint_points_structure() {
        // WF_i = {i}: OIND = ∪_i ({i} ∩ [1, i-1]) — the partial
        // recurrence collapses to the interval [1, i-1].
        let wf = Usr::leaf(LmadSet::single(Lmad::point(v("i"))));
        let o = output_independence(sym("i"), &k(1), &v("N"), &wf);
        match o.node() {
            UsrNode::RecTotal { body, .. } => {
                assert!(matches!(body.node(), UsrNode::Intersect(_, _)));
            }
            other => panic!("expected recurrence, got {other:?}"),
        }
    }

    #[test]
    fn find_empty_for_pure_reads() {
        let s = Summary::read(LmadSet::single(Lmad::point(v("i"))));
        let f = flow_independence(sym("i"), &k(1), &v("N"), &s);
        assert!(f.is_empty());
    }

    #[test]
    fn find_empty_for_pure_writes() {
        let s = Summary::write(LmadSet::single(Lmad::point(v("i"))));
        let f = flow_independence(sym("i"), &k(1), &v("N"), &s);
        assert!(f.is_empty());
    }

    #[test]
    fn find_nonempty_when_reads_meet_writes() {
        let s = Summary {
            wf: Usr::leaf(LmadSet::single(Lmad::point(v("i")))),
            ro: Usr::leaf(LmadSet::single(Lmad::point(v("i") + v("M")))),
            rw: Usr::empty(),
        };
        let f = flow_independence(sym("i"), &k(1), &v("N"), &s);
        assert!(matches!(f.node(), UsrNode::Intersect(_, _)));
    }

    #[test]
    fn slv_for_invariant_wf_is_empty() {
        // WF_i = [0, m] invariant: last iteration writes everything the
        // loop wrote, so SLV applies statically.
        let wf = Usr::leaf(LmadSet::single(Lmad::interval(k(0), v("m"))));
        let s = slv_equation(sym("i"), &k(1), &v("N"), &wf);
        // ∪_i WF − WF = gate(1<=N, WF) − WF. The gate blocks syntactic
        // emptiness only through the gate-aware subtract; accept either
        // Empty or a Subtract whose sides differ only by the gate.
        match s.node() {
            UsrNode::Empty => {}
            UsrNode::Subtract(a, b) => {
                if let UsrNode::Gate(p, inner) = a.node() {
                    assert_eq!(*p, BoolExpr::le(k(1), v("N")));
                    assert_eq!(inner, b);
                } else {
                    panic!("unexpected SLV structure: {s}");
                }
            }
            other => panic!("unexpected SLV structure: {other:?}"),
        }
    }

    #[test]
    fn slv_for_moving_window_is_nonempty() {
        let wf = Usr::leaf(LmadSet::single(Lmad::point(v("i"))));
        let s = slv_equation(sym("i"), &k(1), &v("N"), &wf);
        assert!(!s.is_empty());
    }
}
