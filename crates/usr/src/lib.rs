//! The USR (Uniform Set Representation) language — paper §2.
//!
//! A USR is a DAG whose leaves are [`LmadSet`]s and whose interior nodes
//! represent the operations that cannot be expressed exactly in the LMAD
//! domain: irreducible set operations (`∪ ∩ −`), control-flow *gates*
//! predicating a summary's existence, *call sites* across which summaries
//! cannot be translated, and total (`∪_{i=1}^{N}`) / partial
//! (`∪_{k=1}^{i-1}`) loop *recurrences* that fail exact aggregation.
//!
//! Because the representation is a language (closed under composition)
//! rather than a single array abstraction, summary construction performs
//! far fewer conservative approximations — the key property the paper's
//! predicate extraction relies on.
//!
//! Modules:
//!
//! * [`node`] — the [`Usr`] DAG and simplifying smart constructors,
//! * [`summary`] — RO/WF/RW triples and the data-flow equations of Fig. 2,
//! * [`equations`] — the FIND/OIND independence equations (Eq. 2–3),
//! * [`mod@reshape`] — Fig. 8's accuracy-enabling transformations
//!   (subtraction reassociation and UMEG preservation),
//! * [`eval`] — exact runtime evaluation against concrete bindings.

pub mod equations;
pub mod eval;
pub mod node;
pub mod reshape;
pub mod summary;

pub use equations::{flow_independence, output_independence, slv_equation};
pub use eval::eval_usr;
pub use node::{CallSiteId, Usr, UsrNode};
pub use reshape::{reshape, ReshapeConfig};
pub use summary::Summary;

pub use lip_lmad::{Lmad, LmadSet};
