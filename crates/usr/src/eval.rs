//! Exact runtime evaluation of USRs (the paper's fallback independence
//! test, and the reference semantics for property tests).
//!
//! Evaluation computes the concrete index set denoted by a USR under an
//! [`EvalCtx`] binding. The cost is proportional to the number of touched
//! locations — exactly why the paper prefers predicates and reserves USR
//! evaluation for hoistable cases (§2.2, §5).

use std::collections::BTreeSet;

use lip_symbolic::{EvalCtx, ScopedCtx};

use crate::node::{Usr, UsrNode};

/// Evaluates `u` to its concrete index set. Returns `None` when a symbol
/// is unbound, a recurrence bound is unbound, or the result would exceed
/// `limit` elements (a defence against runaway evaluation, mirroring the
/// paper's "unacceptably large overhead" concern).
pub fn eval_usr(u: &Usr, ctx: &dyn EvalCtx, limit: usize) -> Option<BTreeSet<i64>> {
    match u.node() {
        UsrNode::Empty => Some(BTreeSet::new()),
        UsrNode::Leaf(set) => set.enumerate(ctx, limit),
        UsrNode::Union(a, b) => {
            let mut x = eval_usr(a, ctx, limit)?;
            let y = eval_usr(b, ctx, limit)?;
            x.extend(y);
            if x.len() > limit {
                return None;
            }
            Some(x)
        }
        UsrNode::Intersect(a, b) => {
            let x = eval_usr(a, ctx, limit)?;
            let y = eval_usr(b, ctx, limit)?;
            Some(x.intersection(&y).copied().collect())
        }
        UsrNode::Subtract(a, b) => {
            let x = eval_usr(a, ctx, limit)?;
            let y = eval_usr(b, ctx, limit)?;
            Some(x.difference(&y).copied().collect())
        }
        UsrNode::Gate(p, body) => {
            if p.eval(ctx)? {
                eval_usr(body, ctx, limit)
            } else {
                Some(BTreeSet::new())
            }
        }
        UsrNode::Call(_, body) => eval_usr(body, ctx, limit),
        UsrNode::RecTotal { var, lo, hi, body } | UsrNode::RecPartial { var, lo, hi, body } => {
            let lo = lo.eval(ctx)?;
            let hi = hi.eval(ctx)?;
            let mut out = BTreeSet::new();
            let mut iv = lo;
            while iv <= hi {
                let scoped = ScopedCtx::new(ctx, *var, iv);
                let s = eval_usr(body, &scoped, limit)?;
                out.extend(s);
                if out.len() > limit {
                    return None;
                }
                iv += 1;
            }
            Some(out)
        }
    }
}

/// Convenience: evaluates emptiness (the independence test itself).
pub fn eval_empty(u: &Usr, ctx: &dyn EvalCtx, limit: usize) -> Option<bool> {
    eval_usr(u, ctx, limit).map(|s| s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::output_independence;
    use lip_lmad::{Lmad, LmadSet};
    use lip_symbolic::{sym, BoolExpr, MapCtx, SymExpr};

    fn v(name: &str) -> SymExpr {
        SymExpr::var(sym(name))
    }

    fn k(c: i64) -> SymExpr {
        SymExpr::konst(c)
    }

    #[test]
    fn evaluates_set_algebra() {
        let a = Usr::leaf(LmadSet::single(Lmad::interval(k(0), k(9))));
        let b = Usr::leaf(LmadSet::single(Lmad::interval(k(5), k(14))));
        let ctx = MapCtx::new();
        let inter = eval_usr(&Usr::intersect(a.clone(), b.clone()), &ctx, 1000).unwrap();
        assert_eq!(inter.len(), 5);
        let diff = eval_usr(&Usr::subtract(a.clone(), b.clone()), &ctx, 1000).unwrap();
        assert_eq!(diff, (0..5).collect());
        let uni = eval_usr(&Usr::union(a, b), &ctx, 1000).unwrap();
        assert_eq!(uni, (0..15).collect());
    }

    #[test]
    fn gate_controls_contribution() {
        let s = Usr::gate(
            BoolExpr::ne(v("SYM"), k(1)),
            Usr::leaf(LmadSet::single(Lmad::interval(k(0), k(3)))),
        );
        let mut ctx = MapCtx::new();
        ctx.set_scalar(sym("SYM"), 0);
        assert_eq!(eval_usr(&s, &ctx, 100).unwrap().len(), 4);
        ctx.set_scalar(sym("SYM"), 1);
        assert!(eval_usr(&s, &ctx, 100).unwrap().is_empty());
    }

    #[test]
    fn recurrence_iterates() {
        // ∪_{i=1..4} {2i} = {2,4,6,8}. Use a gate mentioning i so the
        // constructor cannot collapse the recurrence.
        let body = Usr::gate(
            BoolExpr::gt0(v("i")),
            Usr::leaf(LmadSet::single(Lmad::point(v("i").scale(2)))),
        );
        let u = Usr::rec_total(sym("i"), k(1), k(4), body);
        let ctx = MapCtx::new();
        assert_eq!(
            eval_usr(&u, &ctx, 100).unwrap(),
            [2, 4, 6, 8].into_iter().collect()
        );
    }

    #[test]
    fn oind_evaluation_detects_collision() {
        // WF_i = {B(i)} with B = [1, 2, 1]: iterations 1 and 3 collide.
        let wf = Usr::leaf(LmadSet::single(Lmad::point(SymExpr::elem(
            sym("B"),
            v("i"),
        ))));
        let o = output_independence(sym("i"), &k(1), &k(3), &wf);
        let mut ctx = MapCtx::new();
        ctx.set_array(sym("B"), 1, vec![1, 2, 1]);
        assert_eq!(eval_empty(&o, &ctx, 1000), Some(false));
        // Injective index array: no collision.
        ctx.set_array(sym("B"), 1, vec![1, 2, 3]);
        assert_eq!(eval_empty(&o, &ctx, 1000), Some(true));
    }

    #[test]
    fn limit_aborts_runaway() {
        let u = Usr::leaf(LmadSet::single(Lmad::interval(k(0), k(1_000_000))));
        let ctx = MapCtx::new();
        assert!(eval_usr(&u, &ctx, 1000).is_none());
    }

    #[test]
    fn unbound_symbol_propagates_none() {
        let u = Usr::leaf(LmadSet::single(Lmad::point(v("UNBOUND_IN_EVAL"))));
        let ctx = MapCtx::new();
        assert!(eval_usr(&u, &ctx, 1000).is_none());
    }
}
