//! USR reshaping transformations (paper §3.4, Figure 8).
//!
//! Predicates are extracted by pattern-matching the *shape* of a summary,
//! so semantically equivalent USRs can translate to predicates of very
//! different accuracy. Two rewrites repair the most damaging shapes:
//!
//! 1. **Subtraction reassociation**: `(A − B) − C → A − (B ∪ C)`. The
//!    union of the subtracted terms may simplify to a larger exact set
//!    that *includes* `A` even when neither `B` nor `C` alone does.
//! 2. **UMEG preservation**: when `X` and `Y` are unions of mutually
//!    exclusive gates with compatible gate sets, `X − Y`, `X ∩ Y` and
//!    `X ∪ Y` distribute *inside* each gate, keeping the per-branch
//!    structure that gate-aware predicate extraction needs (instrumental
//!    for zeusmp and calculix in the paper's evaluation).

use lip_symbolic::BoolExpr;

use crate::node::{Usr, UsrNode};

/// Which reshaping rules to apply (both on by default; the ablation
/// benches toggle them individually).
#[derive(Copy, Clone, Debug)]
pub struct ReshapeConfig {
    /// Enable `(A − B) − C → A − (B ∪ C)`.
    pub reassociate_subtraction: bool,
    /// Enable UMEG-preserving distribution.
    pub umeg: bool,
}

impl Default for ReshapeConfig {
    fn default() -> ReshapeConfig {
        ReshapeConfig {
            reassociate_subtraction: true,
            umeg: true,
        }
    }
}

/// Applies the Figure 8 reshaping rules bottom-up until a fixed point
/// (bounded by the USR size).
pub fn reshape(u: &Usr, cfg: ReshapeConfig) -> Usr {
    let mut cur = u.clone();
    // The rewrites strictly reorganize; a small iteration bound suffices.
    for _ in 0..4 {
        let next = rewrite(&cur, cfg);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

fn rewrite(u: &Usr, cfg: ReshapeConfig) -> Usr {
    match u.node() {
        UsrNode::Empty | UsrNode::Leaf(_) => u.clone(),
        UsrNode::Union(a, b) => {
            let (a, b) = (rewrite(a, cfg), rewrite(b, cfg));
            if cfg.umeg {
                if let Some(r) = umeg_binary(UmegOp::Union, &a, &b) {
                    return r;
                }
            }
            Usr::union(a, b)
        }
        UsrNode::Intersect(a, b) => {
            let (a, b) = (rewrite(a, cfg), rewrite(b, cfg));
            if cfg.umeg {
                if let Some(r) = umeg_binary(UmegOp::Intersect, &a, &b) {
                    return r;
                }
            }
            Usr::intersect(a, b)
        }
        UsrNode::Subtract(a, b) => {
            let (a, b) = (rewrite(a, cfg), rewrite(b, cfg));
            if cfg.reassociate_subtraction {
                if let UsrNode::Subtract(x, y) = a.node() {
                    return rewrite(&Usr::subtract(x.clone(), Usr::union(y.clone(), b)), cfg);
                }
            }
            if cfg.umeg {
                if let Some(r) = umeg_binary(UmegOp::Subtract, &a, &b) {
                    return r;
                }
            }
            Usr::subtract(a, b)
        }
        UsrNode::Gate(p, body) => Usr::gate(p.clone(), rewrite(body, cfg)),
        UsrNode::Call(site, body) => Usr::call(*site, rewrite(body, cfg)),
        UsrNode::RecTotal { var, lo, hi, body } => {
            Usr::rec_total(*var, lo.clone(), hi.clone(), rewrite(body, cfg))
        }
        UsrNode::RecPartial { var, lo, hi, body } => {
            Usr::rec_partial(*var, lo.clone(), hi.clone(), rewrite(body, cfg))
        }
    }
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum UmegOp {
    Union,
    Intersect,
    Subtract,
}

/// Decomposes `u` as a union of gated summaries `∪_j (g_j # S_j)`.
/// Returns `None` when any union component is ungated.
fn as_umeg(u: &Usr) -> Option<Vec<(BoolExpr, Usr)>> {
    match u.node() {
        UsrNode::Gate(p, body) => Some(vec![(p.clone(), body.clone())]),
        UsrNode::Union(a, b) => {
            let mut left = as_umeg(a)?;
            left.extend(as_umeg(b)?);
            Some(left)
        }
        _ => None,
    }
}

/// Whether the gates are pairwise mutually exclusive (syntactically:
/// `g_i ∧ g_j` folds to `false`).
fn mutually_exclusive(gates: &[BoolExpr]) -> bool {
    for (i, a) in gates.iter().enumerate() {
        for b in gates.iter().skip(i + 1) {
            if a == b {
                continue;
            }
            if !BoolExpr::and(vec![a.clone(), b.clone()]).is_false() {
                return false;
            }
        }
    }
    true
}

/// UMEG-preserving distribution (Figure 8(b)): for `X op Y` where both are
/// unions of mutually exclusive gates over a *compatible* gate set
/// (distinct gates from the two sides must also be mutually exclusive),
/// rewrite to `∪_{g} g # (X_g op Y_g)`.
fn umeg_binary(op: UmegOp, x: &Usr, y: &Usr) -> Option<Usr> {
    let xs = as_umeg(x)?;
    let ys = as_umeg(y)?;
    // Collect the combined gate list and require pairwise exclusivity.
    let mut gates: Vec<BoolExpr> = Vec::new();
    for (g, _) in xs.iter().chain(ys.iter()) {
        if !gates.contains(g) {
            gates.push(g.clone());
        }
    }
    if gates.len() < 2 || !mutually_exclusive(&gates) {
        return None;
    }
    let branch = |side: &[(BoolExpr, Usr)], g: &BoolExpr| -> Usr {
        Usr::union_all(side.iter().filter(|(h, _)| h == g).map(|(_, s)| s.clone()))
    };
    let mut parts = Vec::new();
    for g in &gates {
        let xg = branch(&xs, g);
        let yg = branch(&ys, g);
        let combined = match op {
            UmegOp::Union => Usr::union(xg, yg),
            UmegOp::Intersect => Usr::intersect(xg, yg),
            UmegOp::Subtract => Usr::subtract(xg, yg),
        };
        parts.push(Usr::gate(g.clone(), combined));
    }
    Some(Usr::union_all(parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_lmad::{Lmad, LmadSet};
    use lip_symbolic::{sym, SymExpr};

    fn v(name: &str) -> SymExpr {
        SymExpr::var(sym(name))
    }

    fn k(c: i64) -> SymExpr {
        SymExpr::konst(c)
    }

    fn iv(lo: SymExpr, hi: SymExpr) -> Usr {
        Usr::leaf(LmadSet::single(Lmad::interval(lo, hi)))
    }

    #[test]
    fn reassociates_repeated_subtraction() {
        // (A − B) − C → A − (B ∪ C); B ∪ C merges exactly in the LMAD
        // domain, letting inclusion tests see the full subtracted set.
        let a = iv(k(0), v("n"));
        let b = iv(k(0), k(4));
        let c = iv(k(5), v("n"));
        let u = Usr::subtract(Usr::subtract(a.clone(), b), c);
        let r = reshape(&u, ReshapeConfig::default());
        match r.node() {
            UsrNode::Subtract(x, y) => {
                assert_eq!(*x, a);
                assert!(matches!(y.node(), UsrNode::Leaf(s) if s.lmads().len() == 2));
            }
            other => panic!("expected reassociated subtract, got {other:?}"),
        }
    }

    #[test]
    fn umeg_subtract_distributes() {
        // X = (c # S1) ∪ (¬c # S2), Y = (c # T1) ∪ (¬c # T2):
        // X − Y = (c # (S1 − T1)) ∪ (¬c # (S2 − T2)).
        let c = BoolExpr::ne(v("jbeg"), v("js"));
        let nc = c.clone().negate();
        let s1 = iv(k(0), k(9));
        let s2 = iv(k(20), k(29));
        let t1 = iv(k(0), k(9));
        let t2 = iv(k(25), k(29));
        let x = Usr::union(Usr::gate(c.clone(), s1.clone()), Usr::gate(nc.clone(), s2));
        let y = Usr::union(Usr::gate(c.clone(), t1), Usr::gate(nc.clone(), t2));
        let r = reshape(&Usr::subtract(x, y), ReshapeConfig::default());
        // The c-branch folds to Empty (S1 − T1 = ∅), leaving only the
        // ¬c branch.
        match r.node() {
            UsrNode::Gate(p, body) => {
                assert_eq!(*p, nc);
                assert!(matches!(body.node(), UsrNode::Subtract(_, _)));
            }
            other => panic!("expected single gated branch, got {other:?}"),
        }
        drop(s1);
    }

    #[test]
    fn umeg_requires_mutual_exclusivity() {
        // Gates c and d are unrelated: no distribution.
        let c = BoolExpr::gt0(v("a"));
        let d = BoolExpr::gt0(v("b"));
        let x = Usr::union(
            Usr::gate(c.clone(), iv(k(0), k(5))),
            Usr::gate(d.clone(), iv(k(10), k(15))),
        );
        let y = Usr::gate(c, iv(k(0), k(5)));
        assert!(umeg_binary(UmegOp::Subtract, &x, &y).is_none());
        drop(d);
    }

    #[test]
    fn umeg_intersect_of_exclusive_gates_vanishes() {
        // X = c#S1 ∪ ¬c#S2, Y = c#S2 ∪ ¬c#S1 — intersect distributes to
        // (c # S1∩S2) ∪ (¬c # S2∩S1), which keeps gate structure.
        let c = BoolExpr::eq(v("p"), k(1));
        let nc = c.clone().negate();
        let s1 = iv(k(0), k(3));
        let s2 = iv(k(10), k(13));
        let x = Usr::union(
            Usr::gate(c.clone(), s1.clone()),
            Usr::gate(nc.clone(), s2.clone()),
        );
        let y = Usr::union(Usr::gate(c.clone(), s2), Usr::gate(nc, s1));
        let r = umeg_binary(UmegOp::Intersect, &x, &y).expect("umeg applies");
        match r.node() {
            UsrNode::Union(a, b) => {
                assert!(matches!(a.node(), UsrNode::Gate(_, _)));
                assert!(matches!(b.node(), UsrNode::Gate(_, _)));
            }
            UsrNode::Gate(_, _) => {}
            other => panic!("expected gated union, got {other:?}"),
        }
        drop(c);
    }

    #[test]
    fn reshape_recurses_under_recurrences() {
        let a = iv(k(0), v("n"));
        let inner = Usr::subtract(
            Usr::subtract(a.clone(), iv(k(0), v("i"))),
            iv(v("i") + k(1), v("n")),
        );
        let u = Usr::rec_total(sym("i"), k(1), v("n"), inner);
        let r = reshape(&u, ReshapeConfig::default());
        match r.node() {
            UsrNode::RecTotal { body, .. } => {
                assert!(matches!(body.node(), UsrNode::Subtract(x, _) if *x == a));
            }
            other => panic!("expected recurrence, got {other:?}"),
        }
    }

    #[test]
    fn disabled_rules_do_nothing() {
        let a = iv(k(0), v("n"));
        let u = Usr::subtract(Usr::subtract(a, iv(k(0), k(4))), iv(k(5), k(9)));
        let cfg = ReshapeConfig {
            reassociate_subtraction: false,
            umeg: false,
        };
        assert_eq!(reshape(&u, cfg), u);
    }
}
