//! RO/WF/RW access summaries and the data-flow equations of Figure 2.
//!
//! A [`Summary`] classifies the memory locations a region touches into
//! *write-first* (WF: written before any read), *read-only* (RO) and
//! *read-write* (RW: read before written, or both). Summaries are built
//! bottom-up over a structured program: statement-level summaries are
//! [composed](Summary::compose) across consecutive regions, merged across
//! [branches](Summary::branch), and [aggregated](Summary::aggregate_loop)
//! across loops.

use lip_lmad::LmadSet;
use lip_symbolic::{BoolExpr, Sym, SymExpr};

use crate::node::{CallSiteId, Usr};

/// The (WF, RO, RW) summary triple of a program region.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Summary {
    /// Locations written before any read in the region.
    pub wf: Usr,
    /// Locations only read.
    pub ro: Usr,
    /// Locations read and written (read first, or intermixed).
    pub rw: Usr,
}

impl Default for Summary {
    fn default() -> Summary {
        Summary::empty()
    }
}

impl Summary {
    /// The summary of a region that does not touch the array.
    pub fn empty() -> Summary {
        Summary {
            wf: Usr::empty(),
            ro: Usr::empty(),
            rw: Usr::empty(),
        }
    }

    /// A pure read of `set`.
    pub fn read(set: LmadSet) -> Summary {
        Summary {
            wf: Usr::empty(),
            ro: Usr::leaf(set),
            rw: Usr::empty(),
        }
    }

    /// A pure (first) write of `set`.
    pub fn write(set: LmadSet) -> Summary {
        Summary {
            wf: Usr::leaf(set),
            ro: Usr::empty(),
            rw: Usr::empty(),
        }
    }

    /// An atomic read-modify-write of `set` (e.g. `A(i) = A(i) + 1`).
    pub fn read_write(set: LmadSet) -> Summary {
        Summary {
            wf: Usr::empty(),
            ro: Usr::empty(),
            rw: Usr::leaf(set),
        }
    }

    /// Whether all three components are empty.
    pub fn is_empty(&self) -> bool {
        self.wf.is_empty() && self.ro.is_empty() && self.rw.is_empty()
    }

    /// All locations accessed by the region: `WF ∪ RO ∪ RW`.
    pub fn all(&self) -> Usr {
        Usr::union_all([self.wf.clone(), self.ro.clone(), self.rw.clone()])
    }

    /// All locations written: `WF ∪ RW`.
    pub fn written(&self) -> Usr {
        Usr::union(self.wf.clone(), self.rw.clone())
    }

    /// All locations read: `RO ∪ RW`.
    pub fn read_set(&self) -> Usr {
        Usr::union(self.ro.clone(), self.rw.clone())
    }

    /// COMPOSE of Figure 2(a): `self` executes, then `next`.
    ///
    /// ```text
    /// WF = WF1 ∪ (WF2 − (RO1 ∪ RW1))
    /// RO = (RO1 − (WF2 ∪ RW2)) ∪ (RO2 − (WF1 ∪ RW1))
    /// RW = RW1 ∪ (RW2 − WF1) ∪ (RO1 ∩ WF2)
    /// ```
    pub fn compose(&self, next: &Summary) -> Summary {
        // Fast path: either side empty.
        if self.is_empty() {
            return next.clone();
        }
        if next.is_empty() {
            return self.clone();
        }
        let wf = Usr::union(
            self.wf.clone(),
            Usr::subtract(
                next.wf.clone(),
                Usr::union(self.ro.clone(), self.rw.clone()),
            ),
        );
        let ro = Usr::union(
            Usr::subtract(
                self.ro.clone(),
                Usr::union(next.wf.clone(), next.rw.clone()),
            ),
            Usr::subtract(
                next.ro.clone(),
                Usr::union(self.wf.clone(), self.rw.clone()),
            ),
        );
        let rw = Usr::union_all([
            self.rw.clone(),
            Usr::subtract(next.rw.clone(), self.wf.clone()),
            Usr::intersect(self.ro.clone(), next.wf.clone()),
        ]);
        Summary { wf, ro, rw }
    }

    /// Merge across an `IF cond THEN .. ELSE ..`: each side is gated by
    /// its branch condition and the two are united. When both branches
    /// produce the same component, the gate is elided (the paper's
    /// motivating example for summary-based analyses in §7).
    pub fn branch(cond: &BoolExpr, then_s: &Summary, else_s: &Summary) -> Summary {
        let not_cond = cond.clone().negate();
        let merge = |a: &Usr, b: &Usr| -> Usr {
            if a == b {
                return a.clone();
            }
            Usr::union(
                Usr::gate(cond.clone(), a.clone()),
                Usr::gate(not_cond.clone(), b.clone()),
            )
        };
        Summary {
            wf: merge(&then_s.wf, &else_s.wf),
            ro: merge(&then_s.ro, &else_s.ro),
            rw: merge(&then_s.rw, &else_s.rw),
        }
    }

    /// Gates all three components with `p`.
    pub fn gate(&self, p: &BoolExpr) -> Summary {
        Summary {
            wf: Usr::gate(p.clone(), self.wf.clone()),
            ro: Usr::gate(p.clone(), self.ro.clone()),
            rw: Usr::gate(p.clone(), self.rw.clone()),
        }
    }

    /// Translates all components by `delta` (array reshaping across a
    /// call site: the callee's 1-D index space lands at an offset of the
    /// caller's).
    pub fn translate(&self, delta: &SymExpr) -> Summary {
        Summary {
            wf: translate_usr(&self.wf, delta),
            ro: translate_usr(&self.ro, delta),
            rw: translate_usr(&self.rw, delta),
        }
    }

    /// Substitutes an expression for a symbol in all components (formal →
    /// actual parameter mapping at call sites).
    pub fn subst(&self, s: Sym, with: &SymExpr) -> Summary {
        Summary {
            wf: self.wf.subst(s, with),
            ro: self.ro.subst(s, with),
            rw: self.rw.subst(s, with),
        }
    }

    /// Wraps all components in an unanalyzable-call-site barrier.
    pub fn at_call(&self, site: CallSiteId) -> Summary {
        Summary {
            wf: Usr::call(site, self.wf.clone()),
            ro: Usr::call(site, self.ro.clone()),
            rw: Usr::call(site, self.rw.clone()),
        }
    }

    /// AGGREGATE of Figure 2(b): folds the per-iteration summary
    /// (parametrized by `var ∈ [lo, hi]`) over the whole loop.
    ///
    /// ```text
    /// WF = ∪_i (WFi − ∪_{k<i}(ROk ∪ RWk))
    /// RO = (∪_i ROi) − ∪_i (WFi ∪ RWi)
    /// RW = ∪_i (ROi ∪ RWi) − (WF ∪ RO)
    /// ```
    pub fn aggregate_loop(&self, var: Sym, lo: &SymExpr, hi: &SymExpr) -> Summary {
        let rec = |body: &Usr| -> Usr { Usr::rec_total(var, lo.clone(), hi.clone(), body.clone()) };
        // Fast path: pure write-first loops (the common DOALL shape).
        if self.ro.is_empty() && self.rw.is_empty() {
            return Summary {
                wf: rec(&self.wf),
                ro: Usr::empty(),
                rw: Usr::empty(),
            };
        }
        // Fast path: pure read-only loops.
        if self.wf.is_empty() && self.rw.is_empty() {
            return Summary {
                wf: Usr::empty(),
                ro: rec(&self.ro),
                rw: Usr::empty(),
            };
        }
        // General case. The prefix union ∪_{k<i}(ROk ∪ RWk) runs under a
        // fresh variable, as in the paper's Figure 3.
        let k = Sym::fresh(&format!("{}k", var));
        let read_i = Usr::union(self.ro.clone(), self.rw.clone());
        let read_prefix = Usr::rec_partial(
            k,
            lo.clone(),
            &SymExpr::var(var) - &SymExpr::konst(1),
            read_i.rename_bound(var, k),
        );
        let wf = Usr::rec_total(
            var,
            lo.clone(),
            hi.clone(),
            Usr::subtract(self.wf.clone(), read_prefix),
        );
        let ro = Usr::subtract(
            rec(&self.ro),
            rec(&Usr::union(self.wf.clone(), self.rw.clone())),
        );
        let rw = Usr::subtract(rec(&read_i), Usr::union(wf.clone(), ro.clone()));
        Summary { wf, ro, rw }
    }
}

fn translate_usr(u: &Usr, delta: &SymExpr) -> Usr {
    use crate::node::UsrNode;
    match u.node() {
        UsrNode::Empty => Usr::empty(),
        UsrNode::Leaf(set) => Usr::leaf(set.translate(delta)),
        UsrNode::Union(a, b) => Usr::union(translate_usr(a, delta), translate_usr(b, delta)),
        UsrNode::Intersect(a, b) => {
            Usr::intersect(translate_usr(a, delta), translate_usr(b, delta))
        }
        UsrNode::Subtract(a, b) => Usr::subtract(translate_usr(a, delta), translate_usr(b, delta)),
        UsrNode::Gate(p, body) => Usr::gate(p.clone(), translate_usr(body, delta)),
        UsrNode::Call(site, body) => Usr::call(*site, translate_usr(body, delta)),
        UsrNode::RecTotal { var, lo, hi, body } => {
            Usr::rec_total(*var, lo.clone(), hi.clone(), translate_usr(body, delta))
        }
        UsrNode::RecPartial { var, lo, hi, body } => {
            Usr::rec_partial(*var, lo.clone(), hi.clone(), translate_usr(body, delta))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::UsrNode;
    use lip_lmad::Lmad;
    use lip_symbolic::sym;

    fn v(name: &str) -> SymExpr {
        SymExpr::var(sym(name))
    }

    fn k(c: i64) -> SymExpr {
        SymExpr::konst(c)
    }

    fn set(lo: SymExpr, hi: SymExpr) -> LmadSet {
        LmadSet::single(Lmad::interval(lo, hi))
    }

    #[test]
    fn compose_read_then_write() {
        // RO then WF on the same region: paper's example — RO = S1 − S2,
        // WF = S2 − S1, RW = S1 ∩ S2.
        let s1 = Summary::read(set(k(0), v("n")));
        let s2 = Summary::write(set(k(0), v("m")));
        let c = s1.compose(&s2);
        assert!(matches!(c.ro.node(), UsrNode::Subtract(_, _)));
        assert!(matches!(c.rw.node(), UsrNode::Intersect(_, _)));
        // WF = WF1 ∪ (WF2 − RO1) = S2 − S1.
        assert!(matches!(c.wf.node(), UsrNode::Subtract(_, _)));
    }

    #[test]
    fn compose_write_then_read_is_write_first() {
        // Write [0,n] then read [0,n]: read is covered, WF absorbs it.
        let w = Summary::write(set(k(0), v("n")));
        let r = Summary::read(set(k(0), v("n")));
        let c = w.compose(&r);
        assert_eq!(c.wf, Usr::leaf(set(k(0), v("n"))));
        // RO = RO2 − WF1 = ∅ (identical sets cancel).
        assert!(c.ro.is_empty());
        assert!(c.rw.is_empty());
    }

    #[test]
    fn branch_with_identical_sides_elides_gate() {
        // The §7 motivating example: both branches write A — the gate
        // p(i) disappears from the summary.
        let s = Summary::write(set(k(0), k(0)));
        let cond = BoolExpr::gt0(SymExpr::elem(sym("p"), v("i")));
        let m = Summary::branch(&cond, &s, &s);
        assert_eq!(m.wf, s.wf);
    }

    #[test]
    fn branch_with_single_side_gates() {
        let s = Summary::write(set(k(0), v("n")));
        let cond = BoolExpr::ne(v("SYM"), k(1));
        let m = Summary::branch(&cond, &s, &Summary::empty());
        match m.wf.node() {
            UsrNode::Gate(p, _) => assert_eq!(*p, cond),
            other => panic!("expected gate, got {other:?}"),
        }
        assert!(m.ro.is_empty());
    }

    #[test]
    fn aggregate_pure_write_fast_path() {
        // WF_i = {i} over i in 1..=N aggregates to the leaf [1, N].
        let s = Summary::write(LmadSet::single(Lmad::point(v("i"))));
        let a = s.aggregate_loop(sym("i"), &k(1), &v("N"));
        match a.wf.node() {
            UsrNode::Gate(_, inner) => assert!(matches!(inner.node(), UsrNode::Leaf(_))),
            other => panic!("expected gated leaf, got {other:?}"),
        }
        assert!(a.ro.is_empty());
        assert!(a.rw.is_empty());
    }

    #[test]
    fn aggregate_general_builds_prefix_subtraction() {
        // WF_i = {i}, RO_i = {i+M}: the aggregated WF must subtract the
        // read prefix (cross-iteration write-after-read matters).
        let s = Summary {
            wf: Usr::leaf(LmadSet::single(Lmad::point(v("i")))),
            ro: Usr::leaf(LmadSet::single(Lmad::point(v("i") + v("M")))),
            rw: Usr::empty(),
        };
        let a = s.aggregate_loop(sym("i"), &k(1), &v("N"));
        assert!(matches!(a.wf.node(), UsrNode::RecTotal { .. }));
        assert!(matches!(a.ro.node(), UsrNode::Subtract(_, _)));
    }

    #[test]
    fn translate_shifts_leaves() {
        let s = Summary::write(set(k(0), v("n")));
        let t = s.translate(&v("off"));
        match t.wf.node() {
            UsrNode::Leaf(ls) => {
                assert_eq!(*ls.lmads()[0].offset(), v("off"));
            }
            other => panic!("expected leaf, got {other:?}"),
        }
    }

    #[test]
    fn empty_compose_identity() {
        let s = Summary::read(set(k(0), v("n")));
        assert_eq!(Summary::empty().compose(&s), s);
        assert_eq!(s.compose(&Summary::empty()), s);
    }
}
