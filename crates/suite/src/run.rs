//! Whole-benchmark measurement over the cost-model simulator.
//!
//! For each representative loop: analyze (hybrid + baseline), run the
//! runtime tests against the prepared workload, measure per-iteration
//! costs once, and derive parallel makespans for any processor count.
//! Whole-benchmark times add the unmeasured remainder `(1−SC)` as
//! sequential work (Amdahl), scaled from the measured loops.

use lip_analysis::{baseline_parallel, LoopClass};
use lip_ir::{Stmt, StoreCtx};
use lip_obs::{FissionReport, FragmentReport, LoopDecision, StageReport};
use lip_runtime::sim::{charged_test_units, makespan};
use lip_runtime::{store_fingerprint, Session};
use lip_symbolic::sym;

use crate::bench_def::BenchDef;
use crate::kernels::KernelShape;

/// Rough size of the reference set an exact USR evaluation touches
/// (drives the HOIST-USR cost model).
fn all_refs_estimate(u: &lip_usr::Usr, ctx: &dyn lip_symbolic::EvalCtx) -> u64 {
    lip_usr::eval::eval_usr(u, ctx, 10_000_000)
        .map(|s| s.len() as u64 * 4)
        .unwrap_or(0)
}

/// Measurement of one representative loop.
#[derive(Clone, Debug)]
pub struct LoopMeasurement {
    /// Kernel shape name.
    pub shape: &'static str,
    /// Loop label.
    pub label: String,
    /// The hybrid classification.
    pub class: LoopClass,
    /// Rendered technique set.
    pub techniques: String,
    /// Whether the runtime cascade passed on the workload (true also
    /// for static classifications).
    pub parallel: bool,
    /// Whether the ifort/xlf-style baseline parallelizes it.
    pub baseline_parallel: bool,
    /// Per-iteration work units.
    pub per_iter: Vec<u64>,
    /// Runtime-test units (cascade + CIV slice), sequential.
    pub test_units: u64,
    /// The paper's expected classification string.
    pub expected: &'static str,
    /// LSC weight.
    pub weight: f64,
}

impl LoopMeasurement {
    /// Sequential units of this loop.
    pub fn seq_units(&self) -> u64 {
        self.per_iter.iter().sum()
    }

    /// Test units charged on the critical path — delegates to the
    /// charging rule the simulator shares with the `lip_pred` engine's
    /// fork decision ([`charged_test_units`]): O(1) tests run inline,
    /// large (O(N)) tests are and/or-reduced across processors with
    /// one extra spawn (paper §5).
    pub fn charged_test_units(&self, procs: usize, spawn: u64) -> u64 {
        charged_test_units(self.test_units, procs, spawn)
    }

    /// Simulated parallel units on `procs` processors (including the
    /// runtime test and spawn overhead).
    pub fn par_units(&self, procs: usize, spawn: u64) -> u64 {
        let test = self.charged_test_units(procs, spawn);
        if self.parallel {
            makespan(&self.per_iter, procs) + spawn + test
        } else {
            self.seq_units() + test
        }
    }
}

/// Mirrors the executor's per-fragment parallel decision for the
/// explain report: static fragments run parallel outright, predicated
/// fragments re-test their cascade (exact USR evaluation as the last
/// resort) against the live store, hoisted-USR fallbacks evaluate the
/// exact test, everything else stays sequential.
fn fragment_parallel(
    session: &Session,
    machine: &lip_ir::Machine,
    frame: &lip_ir::Store,
    a: &lip_analysis::LoopAnalysis,
    nthreads: usize,
) -> (bool, Vec<StageReport>, Option<bool>) {
    let ctx = StoreCtx(frame);
    match &a.class {
        LoopClass::StaticParallel => (true, Vec::new(), None),
        LoopClass::Predicated { .. } => {
            let mut stages = Vec::new();
            let (hit, _) = session.cache(machine).pred().first_success_traced(
                &a.cascade,
                &ctx,
                100_000_000,
                session.config().pred,
                nthreads,
                &mut |prog| {
                    Some(store_fingerprint(
                        frame,
                        prog.scalar_syms(),
                        prog.array_syms(),
                    ))
                },
                &mut stages,
            );
            let exact = if hit.is_some() {
                None
            } else {
                Some(matches!(
                    a.ind_usr
                        .as_ref()
                        .and_then(|u| lip_usr::eval_usr(u, &ctx, 100_000_000)),
                    Some(s) if s.is_empty()
                ))
            };
            (hit.is_some() || exact == Some(true), stages, exact)
        }
        LoopClass::NeedsFallback(lip_analysis::FallbackKind::HoistUsr) => {
            let exact = matches!(
                a.ind_usr
                    .as_ref()
                    .and_then(|u| lip_usr::eval_usr(u, &ctx, 100_000_000)),
                Some(s) if s.is_empty()
            );
            (exact, Vec::new(), Some(exact))
        }
        _ => (false, Vec::new(), None),
    }
}

/// Accounts a fission rescue plan for the explain report: runs the
/// fragments in program order on a fresh workload (each fragment's
/// cascade is tested against the store state its execution would see,
/// exactly as the fissioned executor does) and tallies the work units
/// a parallel fragment rescues.
fn account_fission(
    session: &Session,
    shape: &'static KernelShape,
    size: usize,
    plan: &lip_analysis::FissionPlan,
    nthreads: usize,
) -> FissionReport {
    let mut fw = shape.prepared(size);
    let fprog = fw.machine.program().clone();
    let fsub = fprog.subroutine(sym(fw.sub)).expect("subroutine").clone();
    let mut fragments = Vec::new();
    let mut rescued_units = 0u64;
    let mut loop_units = 0u64;
    for frag in &plan.fragments {
        let (parallel, stages, exact_test) =
            fragment_parallel(session, &fw.machine, &fw.frame, &frag.analysis, nthreads);
        let units: u64 = session
            .per_iteration_costs(&fw.machine, &fsub, &frag.target, &mut fw.frame)
            .map(|v| v.iter().sum())
            .unwrap_or(0);
        loop_units += units;
        if parallel {
            rescued_units += units;
        }
        let label = match &frag.target {
            Stmt::Do { label: Some(l), .. } => l.clone(),
            _ => format!("fragment {}", fragments.len()),
        };
        fragments.push(FragmentReport {
            label,
            class: format!("{:?}", frag.analysis.class),
            parallel,
            units,
            stages,
            exact_test,
        });
    }
    FissionReport {
        fragments,
        rescued_units,
        loop_units,
    }
}

/// Measures one loop of a benchmark through `session`.
pub fn measure_loop(
    session: &Session,
    shape: &'static KernelShape,
    size: usize,
    weight: f64,
    expected: &'static str,
) -> LoopMeasurement {
    // Kernel iterations (CIV slices + the measurement pass) execute on
    // the session's backend, and cascade predicates on its predicate
    // engine; work units and verdicts are identical either way, only
    // wall-clock differs — Tables 1–3 are bit-identical across all
    // four combinations (and across concurrent sessions).
    let nthreads = session.config().nthreads;
    let mut p = shape.prepared(size);
    let prog = p.machine.program().clone();
    let sub = prog.subroutine(sym(p.sub)).expect("subroutine").clone();
    let target = sub.find_loop(p.label).expect("loop").clone();

    let analysis = session.analyze(&prog, sub.name, p.label).expect("analysis");
    let base = baseline_parallel(&sub, &target);

    // Runtime tests on the live workload.
    let mut test_units = 0u64;
    if !analysis.civs.is_empty() || matches!(target, Stmt::While { .. }) {
        let niters = matches!(target, Stmt::While { .. })
            .then(|| sym(&format!("{}@niters", analysis.label)));
        test_units += session
            .civ_traces(
                &p.machine,
                &sub,
                &target,
                &analysis.civs,
                &mut p.frame,
                niters,
            )
            .expect("civ slice");
    }
    let obs_on = session.obs().trace_enabled();
    let mut stages: Vec<StageReport> = Vec::new();
    let mut passed_stage: Option<usize> = None;
    let mut exact_test: Option<bool> = None;
    let mut tls_speculated = false;
    let parallel = match &analysis.class {
        LoopClass::StaticParallel => true,
        LoopClass::StaticSequential => false,
        LoopClass::Predicated { .. } => {
            let ctx = StoreCtx(&p.frame);
            let frame = &p.frame;
            // The traced variant reports per-stage verdicts for
            // `Session::explain`; verdicts and charged units are
            // identical to the untraced call either way.
            let (hit, units) = if obs_on {
                session.cache(&p.machine).pred().first_success_traced(
                    &analysis.cascade,
                    &ctx,
                    100_000_000,
                    session.config().pred,
                    nthreads,
                    &mut |prog| {
                        Some(store_fingerprint(
                            frame,
                            prog.scalar_syms(),
                            prog.array_syms(),
                        ))
                    },
                    &mut stages,
                )
            } else {
                session.cache(&p.machine).pred().first_success(
                    &analysis.cascade,
                    &ctx,
                    100_000_000,
                    session.config().pred,
                    nthreads,
                    &mut |prog| {
                        Some(store_fingerprint(
                            frame,
                            prog.scalar_syms(),
                            prog.array_syms(),
                        ))
                    },
                )
            };
            test_units += units;
            passed_stage = hit;
            let mut passed = hit.is_some();
            if !passed {
                // The paper's last resort: exact (hoisted) USR
                // evaluation, then TLS (§5). Cost ≈ the touched
                // reference count; amortized across invocations when
                // hoistable (memoized, per §7's apsi discussion).
                if let Some(u) = &analysis.ind_usr {
                    match lip_usr::eval_usr(u, &ctx, 100_000_000) {
                        Some(s) if s.is_empty() => {
                            let refs = all_refs_estimate(u, &ctx);
                            test_units += refs / 4;
                            exact_test = Some(true);
                            passed = true;
                        }
                        Some(_) => {
                            exact_test = Some(false);
                        }
                        None => {
                            // Not evaluable: thread-level speculation.
                            // LRPD commits on independent workloads at
                            // the cost of shadowing every reference.
                            tls_speculated = true;
                            passed = true;
                        }
                    }
                }
            }
            passed
        }
        // Fallbacks (HOIST-USR / TLS) extract maximal parallelism at a
        // cost proportional to the loop's references (paper §7): model
        // as parallel with a test as expensive as one sequential pass.
        LoopClass::NeedsFallback(_) => true,
        // Fissioned loops are partial wins: the tables' PAR/SEQ column
        // stays conservative (SEQ) here; `bench_vm`'s fission_results
        // section reports the rescued fraction per fragment.
        LoopClass::Fissioned { .. } => false,
    };

    let per_iter = session
        .per_iteration_costs(&p.machine, &sub, &target, &mut p.frame)
        .expect("measure");
    if tls_speculated {
        test_units += per_iter.iter().sum::<u64>() / 4;
    }
    if let LoopClass::NeedsFallback(kind) = &analysis.class {
        // TLS shadows every reference (expensive); hoisted USR
        // evaluation amortizes across loop invocations (paper: apsi's
        // RUN loops are hoisted and memoized).
        let seq: u64 = per_iter.iter().sum();
        test_units += match kind {
            lip_analysis::FallbackKind::Tls => seq / 4,
            lip_analysis::FallbackKind::HoistUsr => seq / 20,
        };
    }

    if obs_on {
        let executor = match (&analysis.class, parallel) {
            (LoopClass::StaticParallel, _) => "parallel (static)".to_string(),
            (LoopClass::Predicated { .. }, true) => match passed_stage {
                Some(k) => format!("parallel (stage {k} passed)"),
                None if exact_test == Some(true) => "parallel (exact test passed)".to_string(),
                None => "speculated (modelled)".to_string(),
            },
            (LoopClass::NeedsFallback(_), _) => "parallel (fallback, modelled)".to_string(),
            (LoopClass::Fissioned { .. }, _) => "fissioned (modelled)".to_string(),
            _ => "sequential".to_string(),
        };
        let mut d = LoopDecision::new(&analysis.label);
        d.kernel = Some(shape.name.to_string());
        d.class = format!("{:?}", analysis.class);
        d.stages = stages;
        d.passed_stage = passed_stage;
        d.exact_test = exact_test;
        d.executor = executor;
        d.test_units = test_units;
        d.loop_units = per_iter.iter().sum();
        // A fission plan only matters when the whole loop did not go
        // parallel: it is the rescue the executor would apply.
        if !parallel {
            d.fission = analysis
                .fission
                .as_deref()
                .map(|plan| account_fission(session, shape, size, plan, nthreads));
        }
        session.obs().record_decision(d);
    }

    let techniques = analysis
        .techniques
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",");
    LoopMeasurement {
        shape: shape.name,
        label: analysis.label.clone(),
        class: analysis.class.clone(),
        techniques,
        parallel,
        baseline_parallel: base,
        per_iter,
        test_units,
        expected,
        weight,
    }
}

/// Whole-benchmark timing model.
#[derive(Clone, Debug)]
pub struct BenchTiming {
    /// Benchmark name.
    pub name: &'static str,
    /// Per-loop measurements.
    pub loops: Vec<LoopMeasurement>,
    /// Sequential coverage (Amdahl bound).
    pub sc: f64,
}

impl BenchTiming {
    /// Total sequential units including the unmeasured remainder.
    pub fn seq_units(&self) -> u64 {
        let measured: u64 = self.loops.iter().map(|l| l.seq_units()).sum();
        let weight: f64 = self.loops.iter().map(|l| l.weight).sum::<f64>().max(1e-9);
        // Scale to the whole program, then add the serial remainder.
        (measured as f64 / weight).round() as u64
    }

    /// Units outside the analyzed loops (serial remainder).
    fn remainder_units(&self) -> u64 {
        let total = self.seq_units() as f64;
        (total * (1.0 - self.sc).max(0.0)).round() as u64
    }

    /// Covered-but-unmeasured units (behave like the measured loops).
    fn covered_scale(&self) -> f64 {
        let weight: f64 = self.loops.iter().map(|l| l.weight).sum::<f64>().max(1e-9);
        self.sc / weight
    }

    /// Simulated parallel time of the whole benchmark under our system.
    pub fn par_units(&self, procs: usize, spawn: u64) -> u64 {
        let par_measured: u64 = self.loops.iter().map(|l| l.par_units(procs, spawn)).sum();
        (par_measured as f64 * self.covered_scale()).round() as u64 + self.remainder_units()
    }

    /// Simulated parallel time under the affine static baseline.
    pub fn baseline_units(&self, procs: usize, spawn: u64) -> u64 {
        let par_measured: u64 = self
            .loops
            .iter()
            .map(|l| {
                if l.baseline_parallel {
                    makespan(&l.per_iter, procs) + spawn
                } else {
                    l.seq_units()
                }
            })
            .sum();
        (par_measured as f64 * self.covered_scale()).round() as u64 + self.remainder_units()
    }

    /// Runtime-test overhead as a fraction of parallel time (RTov).
    pub fn rt_overhead(&self, procs: usize, spawn: u64) -> f64 {
        let tests: u64 = self
            .loops
            .iter()
            .map(|l| l.charged_test_units(procs, spawn))
            .sum();
        let par = self.par_units(procs, spawn);
        if par == 0 {
            0.0
        } else {
            (tests as f64 * self.covered_scale()) / par as f64
        }
    }

    /// Coverage needing runtime tests (SCrt).
    pub fn sc_rt(&self) -> f64 {
        self.loops
            .iter()
            .filter(|l| {
                matches!(
                    l.class,
                    LoopClass::Predicated { .. } | LoopClass::NeedsFallback(_)
                ) || l.test_units > 0
            })
            .map(|l| l.weight)
            .sum()
    }
}

/// Measures a whole benchmark through `session`.
pub fn measure_benchmark(session: &Session, def: &BenchDef) -> BenchTiming {
    let loops = def
        .loops
        .iter()
        .map(|l| measure_loop(session, l.shape, l.size, l.weight, l.expected))
        .collect();
    BenchTiming {
        name: def.name,
        loops,
        sc: def.sc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_def;

    #[test]
    fn dyfesm_solvh_matches_paper_classification() {
        let m = measure_loop(
            &Session::default(),
            &crate::kernels::SOLVH,
            40,
            0.142,
            "F/OI O(1)/O(N)",
        );
        // The paper reports runtime flow/output tests for SOLVH_do20.
        assert!(
            matches!(m.class, LoopClass::Predicated { .. })
                || matches!(m.class, LoopClass::NeedsFallback(_)),
            "got {:?}",
            m.class
        );
        // The baseline cannot touch it (calls, symbolic sections).
        assert!(!m.baseline_parallel);
    }

    #[test]
    fn stencils_are_static_parallel_for_both() {
        let m = measure_loop(
            &Session::default(),
            &crate::kernels::STENCIL,
            200,
            0.5,
            "STATIC-PAR",
        );
        assert_eq!(m.class, LoopClass::StaticParallel);
        assert!(m.parallel);
        assert!(m.baseline_parallel);
        assert_eq!(m.test_units, 0);
    }

    #[test]
    fn offset_crossover_needs_runtime_and_passes() {
        let m = measure_loop(
            &Session::default(),
            &crate::kernels::OFFSET_CROSSOVER,
            256,
            0.4,
            "FI O(1)",
        );
        assert!(matches!(m.class, LoopClass::Predicated { .. }));
        assert!(m.parallel, "cascade should pass on the workload");
        assert!(!m.baseline_parallel);
        assert!(m.test_units > 0);
    }

    #[test]
    fn sequential_recurrence_stays_sequential() {
        let m = measure_loop(
            &Session::default(),
            &crate::kernels::SEQ_RECURRENCE,
            128,
            0.3,
            "STATIC-SEQ",
        );
        assert!(!m.parallel);
        assert!(!m.baseline_parallel);
    }

    #[test]
    fn observer_session_explains_hoist_indirect_by_kernel_name() {
        let session = Session::builder()
            .observer(lip_obs::ObsLevel::Trace)
            .build();
        let m = measure_loop(
            &session,
            &crate::kernels::HOIST_INDIRECT,
            64,
            0.1,
            "FI HOIST-USR",
        );
        assert!(!m.parallel, "hoist_indirect cascade fails on the workload");

        // The decision is stored under both the loop label and the
        // kernel name, so `explain` resolves either.
        let d = session
            .explain_decision("hoist_indirect")
            .expect("decision by kernel name");
        assert_eq!(d.label, m.label);
        assert_eq!(d.kernel.as_deref(), Some("hoist_indirect"));
        assert_eq!(d.passed_stage, None, "no cascade stage passes");
        assert!(
            !d.stages.is_empty() && d.stages.iter().all(|s| s.verdict != Some(true)),
            "stage reports must show the failing cascade: {:?}",
            d.stages
        );
        assert_eq!(d.exact_test, Some(false), "exact test finds dependences");
        let f = d.fission.as_ref().expect("fission rescue plan");
        assert_eq!(f.fragments.len(), 2);
        assert_eq!(f.fragments.iter().filter(|fr| fr.parallel).count(), 1);
        let frac = f.rescued_fraction();
        assert!(
            (frac - 0.5).abs() < 0.02,
            "rescued fraction {frac} should be ~0.50"
        );
        // The rendered report carries the same story.
        let text = session.explain("hoist_indirect").expect("explain text");
        assert!(text.contains(&m.label), "{text}");
        // An off-session records nothing.
        assert!(Session::default().explain("hoist_indirect").is_none());
    }

    #[test]
    fn benchmark_speedups_have_paper_shape() {
        // swim: fully static-parallel — near-linear speedup; the
        // baseline matches (its loops are affine).
        let swim = bench_def::SPEC2006
            .iter()
            .find(|b| b.name == "swim")
            .expect("swim");
        let t = measure_benchmark(&Session::default(), swim);
        let seq = t.seq_units() as f64;
        let p8 = t.par_units(8, 2000) as f64;
        assert!(seq / p8 > 4.0, "swim 8-proc speedup {}", seq / p8);

        // ocean: SC = 0.65 caps the speedup hard (Amdahl), and the
        // factorization must beat the baseline (FTRVMT needs the O(1)
        // predicate the baseline lacks).
        let ocean = bench_def::PERFECT_CLUB
            .iter()
            .find(|b| b.name == "ocean")
            .expect("ocean");
        let t = measure_benchmark(&Session::default(), ocean);
        let seq = t.seq_units() as f64;
        let ours = t.par_units(4, 2000) as f64;
        let base = t.baseline_units(4, 2000) as f64;
        assert!(seq / ours < 2.0, "ocean speedup {}", seq / ours);
        assert!(ours < base, "factorization {ours} vs baseline {base}");
    }

    #[test]
    fn rt_overhead_is_small_for_predicated_benchmarks() {
        let trfd = bench_def::PERFECT_CLUB
            .iter()
            .find(|b| b.name == "trfd")
            .expect("trfd");
        let t = measure_benchmark(&Session::default(), trfd);
        let rtov = t.rt_overhead(4, 2000);
        assert!(rtov < 0.08, "trfd RTov {rtov}");
    }
}

#[cfg(test)]
mod shape_report {
    use super::*;

    /// Diagnostic: prints the classification of every kernel shape
    /// (run with `--nocapture` to inspect).
    #[test]
    fn report_all_shapes() {
        for shape in crate::kernels::all_shapes() {
            let m = measure_loop(&Session::default(), shape, 64, 0.3, "-");
            println!(
                "{:<18} class={:?} parallel={} baseline={} test_units={} seq={}",
                shape.name,
                m.class,
                m.parallel,
                m.baseline_parallel,
                m.test_units,
                m.seq_units()
            );
        }
    }
}

#[cfg(test)]
mod solvh_debug {
    use super::*;
    use lip_analysis::ArrayPlan;
    use lip_symbolic::sym;

    #[test]
    fn solvh_cascade_details() {
        let shape = &crate::kernels::SOLVH;
        let p = shape.prepared(16);
        let prog = p.machine.program().clone();
        let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
        let analysis = Session::default()
            .analyze(&prog, sub.name, p.label)
            .expect("a");
        let ctx = StoreCtx(&p.frame);
        for (k, st) in analysis.cascade.stages.iter().enumerate() {
            println!(
                "stage {k} (cx {}): eval={:?} ({} leaves)",
                st.complexity,
                st.pred.eval(&ctx, 1_000_000),
                st.pred.leaf_count()
            );
        }
        if let Some(u) = &analysis.ind_usr {
            let r = lip_usr::eval_usr(u, &ctx, 1_000_000);
            println!("exact eval: {:?}", r.map(|s| s.len()));
        } else {
            println!("no ind_usr");
        }
        for (a, plan) in &analysis.arrays {
            let kind = match plan {
                ArrayPlan::ReadOnly => "read-only",
                ArrayPlan::Independent => "independent",
                ArrayPlan::Predicated(_) => "predicated",
                ArrayPlan::Privatized { .. } => "privatized",
                ArrayPlan::Reduction { .. } => "reduction",
                ArrayPlan::Fallback(_) => "fallback",
            };
            println!("array {a}: {kind}");
        }
    }
}
