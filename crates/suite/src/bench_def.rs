//! The 26-benchmark evaluation substrate (paper Tables 1–3).
//!
//! Each benchmark is modeled by the representative loops its table row
//! reports, instantiated from the kernel shapes of [`crate::kernels`]
//! with the row's classification as the *expected* outcome, its LSC as
//! the loop weight, and the row's SC as the Amdahl bound for the
//! whole-benchmark timing model.

use crate::kernels::{self, KernelShape};

/// Benchmark suite grouping (the paper's three tables).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SuiteKind {
    /// Table 1 / Figure 10.
    PerfectClub,
    /// Table 2 / Figure 11.
    Spec92,
    /// Table 3 / Figures 12–13.
    Spec2006,
}

/// One representative loop of a benchmark.
#[derive(Copy, Clone)]
pub struct LoopDef {
    /// The kernel shape that reproduces the loop's access pattern.
    pub shape: &'static KernelShape,
    /// Problem size multiplier (relative to the benchmark base size).
    pub size: usize,
    /// The loop's share of sequential coverage (the LSC column).
    pub weight: f64,
    /// The paper's classification for this loop.
    pub expected: &'static str,
}

/// A benchmark definition.
pub struct BenchDef {
    /// Benchmark name (lowercase, as in the paper).
    pub name: &'static str,
    /// Which table/figure it belongs to.
    pub suite: SuiteKind,
    /// Sequential coverage (SC column, fraction).
    pub sc: f64,
    /// Representative loops.
    pub loops: &'static [LoopDef],
    /// Paper-reported techniques (free text for the tables).
    pub techniques: &'static str,
}

macro_rules! ld {
    ($shape:expr, $size:expr, $weight:expr, $exp:expr) => {
        LoopDef {
            shape: &$shape,
            size: $size,
            weight: $weight,
            expected: $exp,
        }
    };
}

/// The PERFECT-CLUB suite (Table 1).
pub static PERFECT_CLUB: &[BenchDef] = &[
    BenchDef {
        name: "flo52",
        suite: SuiteKind::PerfectClub,
        sc: 0.95,
        techniques: "PRIV,SRED,SLV,RRED",
        loops: &[
            ld!(kernels::PRIVATE_SCRATCH, 600, 0.195, "STATIC-PAR"),
            ld!(kernels::STENCIL, 3000, 0.096, "STATIC-PAR"),
            ld!(kernels::TINY_LOOP, 24, 0.003, "OI O(1)"),
        ],
    },
    BenchDef {
        name: "bdna",
        suite: SuiteKind::PerfectClub,
        sc: 0.94,
        techniques: "PRIV,S/RRED,CIVagg",
        loops: &[
            ld!(kernels::STENCIL, 6000, 0.595, "STATIC-PAR"),
            ld!(kernels::CIV_CONDITIONAL, 3000, 0.315, "CIVagg"),
        ],
    },
    BenchDef {
        name: "arc2d",
        suite: SuiteKind::PerfectClub,
        sc: 0.97,
        techniques: "PRIV,SLV,MON",
        loops: &[
            ld!(kernels::PRIVATE_SCRATCH, 500, 0.163, "STATIC-PAR"),
            ld!(kernels::OFFSET_CROSSOVER, 2500, 0.107, "FI O(1)"),
            ld!(kernels::OFFSET_CROSSOVER, 2200, 0.090, "FI O(1)"),
        ],
    },
    BenchDef {
        name: "dyfesm",
        suite: SuiteKind::PerfectClub,
        sc: 0.97,
        techniques: "PRIV,EXT-RRED,HOIST-USR,MON",
        loops: &[
            ld!(
                kernels::EXT_REDUCTION,
                1800,
                0.439,
                "FI HOIST-USR / OI O(N)"
            ),
            ld!(kernels::MONOTONE_WINDOWS, 200, 0.273, "OI O(N)"),
            ld!(kernels::SOLVH, 60, 0.142, "F/OI O(1)/O(N)"),
        ],
    },
    BenchDef {
        name: "mdg",
        suite: SuiteKind::PerfectClub,
        sc: 0.99,
        techniques: "PRIV,RRED",
        loops: &[
            ld!(kernels::STENCIL, 9000, 0.92, "STATIC-PAR"),
            ld!(kernels::STATIC_REDUCTION, 900, 0.070, "STATIC-PAR"),
        ],
    },
    BenchDef {
        name: "trfd",
        suite: SuiteKind::PerfectClub,
        sc: 0.99,
        techniques: "PRIV,SLV,MON",
        loops: &[
            ld!(kernels::STENCIL, 6400, 0.637, "STATIC-PAR"),
            ld!(kernels::OFFSET_CROSSOVER, 3100, 0.309, "FI O(1)"),
            ld!(kernels::MONOTONE_WINDOWS, 120, 0.039, "OI O(N)"),
        ],
    },
    BenchDef {
        name: "track",
        suite: SuiteKind::PerfectClub,
        sc: 0.97,
        techniques: "PRIV,CIVagg,CIV-COMP,TLS",
        loops: &[
            ld!(kernels::CIV_WHILE, 5000, 0.492, "CIV-COMP"),
            ld!(kernels::CIV_WHILE, 4800, 0.466, "CIV-COMP"),
            ld!(kernels::TLS_FEEDBACK, 150, 0.012, "TLS"),
        ],
    },
    BenchDef {
        name: "spec77",
        suite: SuiteKind::PerfectClub,
        sc: 0.76,
        techniques: "PRIV,SRED,SLV,TLS",
        loops: &[
            ld!(kernels::STENCIL, 5700, 0.571, "STATIC-PAR"),
            ld!(kernels::TLS_FEEDBACK, 1600, 0.165, "TLS"),
            ld!(kernels::OFFSET_CROSSOVER, 260, 0.024, "FI O(1)"),
        ],
    },
    BenchDef {
        name: "ocean",
        suite: SuiteKind::PerfectClub,
        sc: 0.65,
        techniques: "PRIV,SLV,MON",
        loops: &[
            ld!(kernels::OFFSET_CROSSOVER, 4500, 0.454, "FI O(1)"),
            ld!(kernels::STENCIL, 520, 0.052, "STATIC-PAR"),
            ld!(kernels::TINY_LOOP, 20, 0.002, "STATIC-PAR"),
        ],
    },
    BenchDef {
        name: "qcd",
        suite: SuiteKind::PerfectClub,
        sc: 0.99,
        techniques: "PRIV",
        loops: &[
            ld!(kernels::SEQ_RECURRENCE, 3200, 0.319, "STATIC-SEQ"),
            ld!(kernels::SEQ_RECURRENCE, 3100, 0.316, "STATIC-SEQ"),
            ld!(kernels::TINY_LOOP, 100, 0.010, "OI O(1)"),
        ],
    },
];

/// The SPEC89/92 suite (Table 2).
pub static SPEC92: &[BenchDef] = &[
    BenchDef {
        name: "matrix300",
        suite: SuiteKind::Spec92,
        sc: 1.0,
        techniques: "PRIV,RRED",
        loops: &[
            ld!(kernels::STENCIL, 3000, 0.302, "STATIC-PAR"),
            ld!(kernels::STENCIL, 3000, 0.300, "STATIC-PAR"),
            ld!(kernels::INDEX_REDUCTION, 1280, 0.128, "OI O(1)"),
        ],
    },
    BenchDef {
        name: "swm256",
        suite: SuiteKind::Spec92,
        sc: 0.99,
        techniques: "PRIV,SRED",
        loops: &[
            ld!(kernels::STENCIL, 4000, 0.406, "STATIC-PAR"),
            ld!(kernels::STENCIL, 3000, 0.297, "STATIC-PAR"),
            ld!(kernels::STENCIL, 2800, 0.278, "STATIC-PAR"),
        ],
    },
    BenchDef {
        name: "ora",
        suite: SuiteKind::Spec92,
        sc: 1.0,
        techniques: "PRIV,SLV,SRED",
        loops: &[ld!(kernels::STATIC_REDUCTION, 10000, 0.999, "STATIC-PAR")],
    },
    BenchDef {
        name: "nasa7",
        suite: SuiteKind::Spec92,
        sc: 0.90,
        techniques: "PRIV,SLV,SRED,CIVagg",
        loops: &[
            ld!(kernels::OFFSET_CROSSOVER, 2100, 0.211, "FI O(1)"),
            ld!(kernels::CIV_CONDITIONAL, 1300, 0.132, "SLV O(N) CIV-COMP"),
            ld!(kernels::OFFSET_CROSSOVER, 940, 0.094, "FI O(1)"),
        ],
    },
    BenchDef {
        name: "tomcatv",
        suite: SuiteKind::Spec92,
        sc: 1.0,
        techniques: "PRIV,SLV,SRED",
        loops: &[
            ld!(kernels::STENCIL, 3800, 0.378, "STATIC-PAR"),
            ld!(kernels::TINY_LOOP, 40, 0.003, "STATIC-PAR"),
            ld!(kernels::STENCIL, 1100, 0.109, "STATIC-PAR"),
        ],
    },
    BenchDef {
        name: "mdljdp2",
        suite: SuiteKind::Spec92,
        sc: 0.87,
        techniques: "PRIV,S/RRED",
        loops: &[
            ld!(kernels::STENCIL, 8000, 0.824, "STATIC-PAR"),
            ld!(kernels::TINY_LOOP, 60, 0.016, "STATIC-PAR"),
        ],
    },
    BenchDef {
        name: "hydro2d",
        suite: SuiteKind::Spec92,
        sc: 0.92,
        techniques: "PRIV",
        loops: &[
            ld!(kernels::STENCIL, 1800, 0.176, "STATIC-PAR"),
            ld!(kernels::STENCIL, 1400, 0.142, "STATIC-PAR"),
            ld!(kernels::TINY_LOOP, 75, 0.075, "STATIC-PAR"),
        ],
    },
];

/// The SPEC2000/2006 suite (Table 3).
pub static SPEC2006: &[BenchDef] = &[
    BenchDef {
        name: "wupwise",
        suite: SuiteKind::Spec2006,
        sc: 0.93,
        techniques: "PRIV,RRED,SLV",
        loops: &[
            ld!(kernels::OFFSET_CROSSOVER, 2600, 0.258, "F/OI O(1)"),
            ld!(kernels::OFFSET_CROSSOVER, 2600, 0.259, "F/OI O(1)"),
            ld!(kernels::OFFSET_CROSSOVER, 2100, 0.207, "F/OI O(1)"),
        ],
    },
    BenchDef {
        name: "apsi",
        suite: SuiteKind::Spec2006,
        sc: 0.99,
        techniques: "HOIST-USR,PRIV,SRED,SLV",
        loops: &[
            ld!(kernels::HOIST_INDIRECT, 1800, 0.176, "FI HOIST-USR"),
            ld!(kernels::HOIST_INDIRECT, 1000, 0.104, "FI HOIST-USR"),
            ld!(kernels::STENCIL, 1100, 0.110, "STATIC-PAR"),
        ],
    },
    BenchDef {
        name: "applu",
        suite: SuiteKind::Spec2006,
        sc: 0.98,
        techniques: "PRIV,S/RRED,SLV",
        loops: &[
            ld!(kernels::SEQ_RECURRENCE, 2800, 0.284, "STATIC-SEQ"),
            ld!(kernels::SEQ_RECURRENCE, 2800, 0.281, "STATIC-SEQ"),
            ld!(kernels::STENCIL, 1400, 0.141, "STATIC-PAR"),
        ],
    },
    BenchDef {
        name: "mgrid",
        suite: SuiteKind::Spec2006,
        sc: 1.0,
        techniques: "PRIV",
        loops: &[
            ld!(kernels::STENCIL, 5100, 0.515, "STATIC-PAR"),
            ld!(kernels::STENCIL, 2900, 0.289, "STATIC-PAR"),
        ],
    },
    BenchDef {
        name: "swim",
        suite: SuiteKind::Spec2006,
        sc: 1.0,
        techniques: "PRIV,SRED",
        loops: &[
            ld!(kernels::STENCIL, 4500, 0.448, "STATIC-PAR"),
            ld!(kernels::STENCIL, 2000, 0.205, "STATIC-PAR"),
            ld!(kernels::STENCIL, 1800, 0.180, "STATIC-PAR"),
        ],
    },
    BenchDef {
        name: "bwaves",
        suite: SuiteKind::Spec2006,
        sc: 1.0,
        techniques: "PRIV,SLV,SRED",
        loops: &[
            ld!(kernels::STENCIL, 7500, 0.751, "STATIC-PAR"),
            ld!(kernels::STENCIL, 580, 0.058, "STATIC-PAR"),
        ],
    },
    BenchDef {
        name: "zeusmp",
        suite: SuiteKind::Spec2006,
        sc: 0.99,
        techniques: "PRIV,SLV,UMEG",
        loops: &[
            ld!(kernels::STENCIL, 1000, 0.103, "STATIC-PAR"),
            ld!(kernels::GATED_BRANCHES, 760, 0.076, "F/OI O(1) UMEG"),
            ld!(kernels::GATED_BRANCHES, 240, 0.024, "OI O(1)"),
        ],
    },
    BenchDef {
        name: "gromacs",
        suite: SuiteKind::Spec2006,
        sc: 0.90,
        techniques: "PRIV,RRED,BOUNDS-COMP",
        loops: &[
            ld!(kernels::INDEX_REDUCTION, 8500, 0.848, "BOUNDS-COMP"),
            ld!(kernels::INDEX_REDUCTION, 220, 0.022, "BOUNDS-COMP"),
        ],
    },
    BenchDef {
        name: "calculix",
        suite: SuiteKind::Spec2006,
        sc: 0.74,
        techniques: "SRED,PRIV,UMEG,BOUNDS-COMP",
        loops: &[ld!(
            kernels::INDEX_REDUCTION,
            7400,
            0.737,
            "BOUNDS-COMP F/OI O(N)/O(1)"
        )],
    },
    BenchDef {
        name: "gamess",
        suite: SuiteKind::Spec2006,
        sc: 0.32,
        techniques: "PRIV,RRED",
        loops: &[
            ld!(kernels::STATIC_REDUCTION, 180, 0.18, "STATIC-PAR"),
            ld!(kernels::STATIC_REDUCTION, 140, 0.140, "STATIC-PAR"),
        ],
    },
];

/// All benchmarks across the three suites.
pub fn all_benchmarks() -> Vec<&'static BenchDef> {
    PERFECT_CLUB
        .iter()
        .chain(SPEC92.iter())
        .chain(SPEC2006.iter())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_counts_match_paper_tables() {
        assert_eq!(PERFECT_CLUB.len(), 10);
        assert_eq!(SPEC92.len(), 7);
        assert_eq!(SPEC2006.len(), 10);
        // 26 measured + gamess (analyzed, not measured in figures).
        assert_eq!(all_benchmarks().len(), 27);
    }

    #[test]
    fn weights_do_not_exceed_coverage() {
        for b in all_benchmarks() {
            let total: f64 = b.loops.iter().map(|l| l.weight).sum();
            assert!(
                total <= b.sc + 1e-9,
                "{}: loop weights {total} exceed SC {}",
                b.name,
                b.sc
            );
        }
    }
}
