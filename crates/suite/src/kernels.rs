//! The kernel shapes underlying the 26-benchmark evaluation substrate.
//!
//! The paper's benchmarks are proprietary Fortran codes; per DESIGN.md
//! each benchmark is represented here by mini-Fortran kernels that
//! reproduce the *loop shapes* its table row reports — the same access
//! patterns, the same disambiguation technique, the same test
//! complexity. Kernels are parametrized by a problem size `n`.

use lip_ir::{ArrayBuf, Machine, Store, Value};
use lip_symbolic::sym;

/// A prepared kernel: the machine, the frame for the kernel subroutine,
/// plus the subroutine/loop names.
pub struct Prepared {
    /// Interpreter over the kernel program.
    pub machine: Machine,
    /// Frame with all parameters bound.
    pub frame: Store,
    /// Subroutine containing the loop.
    pub sub: &'static str,
    /// Loop label.
    pub label: &'static str,
}

/// A kernel shape: source + a preparation function.
#[derive(Copy, Clone)]
pub struct KernelShape {
    /// Shape name (for DESIGN/EXPERIMENTS cross-reference).
    pub name: &'static str,
    /// Mini-Fortran source.
    pub source: &'static str,
    /// Subroutine containing the target loop.
    pub sub: &'static str,
    /// Target loop label.
    pub label: &'static str,
    /// Binds parameters/arrays for problem size `n`.
    pub prepare: fn(usize) -> (Store, Machine),
}

impl KernelShape {
    /// Prepares the kernel at problem size `n`.
    pub fn prepared(&self, n: usize) -> Prepared {
        let (frame, machine) = (self.prepare)(n);
        Prepared {
            machine,
            frame,
            sub: self.sub,
            label: self.label,
        }
    }
}

fn machine_of(src: &str) -> Machine {
    Machine::new(lip_ir::parse_program(src).expect("kernel source parses"))
}

fn fill_real(buf: &ArrayBuf, f: impl Fn(usize) -> f64) {
    for i in 0..buf.len() {
        buf.set(i, Value::Real(f(i)));
    }
}

fn fill_int(buf: &ArrayBuf, f: impl Fn(usize) -> i64) {
    for i in 0..buf.len() {
        buf.set(i, Value::Int(f(i)));
    }
}

/// 1. Affine stencil sweep — STATIC-PAR everywhere (swim, mgrid,
///    swm256, tomcatv, hydro2d, mdljdp2, bwaves, ora, mdg interf …).
pub const STENCIL: KernelShape = KernelShape {
    name: "stencil",
    source: "
SUBROUTINE calc(UNEW, U, V, N)
  DIMENSION UNEW(*), U(*), V(*)
  INTEGER i, N
  DO sweep i = 1, N
    UNEW(i) = 0.25 * (U(i) + V(i)) + 0.5 * U(i)
  ENDDO
END
",
    sub: "calc",
    label: "sweep",
    prepare: |n| {
        let machine = machine_of(STENCIL.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        frame.alloc_real(sym("UNEW"), n);
        let u = frame.alloc_real(sym("U"), n);
        let v = frame.alloc_real(sym("V"), n);
        fill_real(&u, |i| i as f64);
        fill_real(&v, |i| (i % 7) as f64);
        (frame, machine)
    },
};

/// 2. The paper's Figure 1: interprocedural gated coverage with array
///    reshaping — dyfesm SOLVH_do20, F/OI O(1)/O(N).
pub const SOLVH: KernelShape = KernelShape {
    name: "solvh",
    source: "
SUBROUTINE solvh(HE, XE, IA, IB, N, NS, NP, SYM)
  DIMENSION HE(32, *), XE(*)
  INTEGER IA(*), IB(*)
  INTEGER i, k, id, N, NS, NP, SYM
  DO do20 i = 1, N
    DO k = 1, IA(i)
      id = IB(i) + k - 1
      CALL geteu(XE, SYM, NP)
      CALL matmult(HE(1, id), XE, NS)
      CALL solvhe(HE(1, id), NP)
    ENDDO
  ENDDO
END

SUBROUTINE geteu(XE, SYM, NP)
  DIMENSION XE(16, *)
  INTEGER i, j, SYM, NP
  IF (SYM .NE. 1) THEN
    DO i = 1, NP
      DO j = 1, 16
        XE(j, i) = 1.5
      ENDDO
    ENDDO
  ENDIF
END

SUBROUTINE matmult(HE, XE, NS)
  DIMENSION HE(*), XE(*)
  INTEGER j, NS
  DO j = 1, NS
    HE(j) = XE(j)
    XE(j) = XE(j) * 0.5
  ENDDO
END

SUBROUTINE solvhe(HE, NP)
  DIMENSION HE(8, *)
  INTEGER i, j, NP
  DO j = 1, 3
    DO i = 1, NP
      HE(j, i) = HE(j, i) + 1.0
    ENDDO
  ENDDO
END
",
    sub: "solvh",
    label: "do20",
    prepare: |n| {
        let machine = machine_of(SOLVH.source);
        let mut frame = Store::new();
        let (ns, np) = (16i64, 2i64);
        frame
            .set_int(sym("N"), n as i64)
            .set_int(sym("NS"), ns)
            .set_int(sym("NP"), np)
            .set_int(sym("SYM"), 0);
        let ia = frame.alloc_int(sym("IA"), n);
        let ib = frame.alloc_int(sym("IB"), n);
        fill_int(&ia, |_| 2);
        // Non-overlapping sections.
        fill_int(&ib, |i| 2 * i as i64 + 1);
        // HE is declared (32, *) in solvh: bind matching extents.
        let he = ArrayBuf::new_real(32 * (2 * n + 2));
        frame.bind_array(
            sym("HE"),
            lip_ir::ArrayView {
                buf: he,
                offset: 0,
                extents: vec![32, i64::MAX],
            },
        );
        frame.alloc_real(sym("XE"), 64);
        (frame, machine)
    },
};

/// 3. Symbolic offset crossover — FI O(1) (ocean FTRVMT_do109, arc2d
///    FILERX, wupwise MULDEO/MULDOE, trfd OLDA_do300, spec77 SICDKD).
pub const OFFSET_CROSSOVER: KernelShape = KernelShape {
    name: "offset_crossover",
    source: "
SUBROUTINE ftrvmt(A, N, M)
  DIMENSION A(*)
  INTEGER i, N, M
  DO do109 i = 1, N
    A(i) = A(i + M) * 0.5 + 1.0
  ENDDO
END
",
    sub: "ftrvmt",
    label: "do109",
    prepare: |n| {
        let machine = machine_of(OFFSET_CROSSOVER.source);
        let mut frame = Store::new();
        frame
            .set_int(sym("N"), n as i64)
            .set_int(sym("M"), n as i64);
        let a = frame.alloc_real(sym("A"), 2 * n);
        fill_real(&a, |i| i as f64);
        (frame, machine)
    },
};

/// 4. Monotone index windows — OI O(N) via the §3.3 monotonicity rule
///    (trfd INTGRL_do140, dyfesm SOLXDD, bdna segments).
pub const MONOTONE_WINDOWS: KernelShape = KernelShape {
    name: "monotone_windows",
    source: "
SUBROUTINE intgrl(A, B, N, L)
  DIMENSION A(*)
  INTEGER B(*)
  INTEGER i, k, N, L
  DO do140 i = 1, N
    DO k = 1, L
      A(B(i) + k - 1) = i + k * 0.5
    ENDDO
  ENDDO
END
",
    sub: "intgrl",
    label: "do140",
    prepare: |n| {
        let machine = machine_of(MONOTONE_WINDOWS.source);
        let mut frame = Store::new();
        let l = 32i64;
        frame.set_int(sym("N"), n as i64).set_int(sym("L"), l);
        frame.alloc_real(sym("A"), n * l as usize + l as usize);
        let b = frame.alloc_int(sym("B"), n);
        fill_int(&b, |i| (i as i64) * l + 1); // strictly monotone bases
        (frame, machine)
    },
};

/// 5. Index-array reduction with unknown bounds — RRED + BOUNDS-COMP
///    (gromacs INL1130, calculix MAFILLSM_do7, nasa7 pieces).
pub const INDEX_REDUCTION: KernelShape = KernelShape {
    name: "index_reduction",
    source: "
SUBROUTINE inl1130(F, J, N)
  DIMENSION F(*)
  INTEGER J(*)
  INTEGER i, N
  DO do1130 i = 1, N
    F(J(i)) = F(J(i)) + 0.5
    F(J(i) + 1) = F(J(i) + 1) + 0.25
    F(J(i) + 2) = F(J(i) + 2) + 0.25
  ENDDO
END
",
    sub: "inl1130",
    label: "do1130",
    prepare: |n| {
        let machine = machine_of(INDEX_REDUCTION.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        frame.alloc_real(sym("F"), 3 * n + 4);
        let j = frame.alloc_int(sym("J"), n);
        fill_int(&j, |i| 3 * i as i64 + 1); // disjoint triplets
        (frame, machine)
    },
};

/// 6. Union of mutually exclusive gates — the zeusmp TRANX2_do2100
///    shape (UMEG + F/OI O(1)).
pub const GATED_BRANCHES: KernelShape = KernelShape {
    name: "gated_branches",
    source: "
SUBROUTINE tranx2(DEOD, N, jbeg, js, M)
  DIMENSION DEOD(*)
  INTEGER i, N, jbeg, js, M
  DO do2100 i = 1, N
    IF (jbeg .EQ. js) THEN
      DEOD(i) = 1.0
    ELSE
      DEOD(i + M) = 2.0
    ENDIF
  ENDDO
END
",
    sub: "tranx2",
    label: "do2100",
    prepare: |n| {
        let machine = machine_of(GATED_BRANCHES.source);
        let mut frame = Store::new();
        frame
            .set_int(sym("N"), n as i64)
            .set_int(sym("jbeg"), 2)
            .set_int(sym("js"), 2)
            .set_int(sym("M"), n as i64);
        frame.alloc_real(sym("DEOD"), 2 * n);
        (frame, machine)
    },
};

/// 7. Conditionally incremented induction variable — CIVagg (bdna
///    ACTFOR_do240 / CORREC_do401).
pub const CIV_CONDITIONAL: KernelShape = KernelShape {
    name: "civ_conditional",
    source: "
SUBROUTINE actfor(X, C, N, Q)
  DIMENSION X(*)
  INTEGER C(*)
  INTEGER i, civ, N, Q
  civ = Q
  DO do240 i = 1, N
    IF (C(i) .GT. 0) THEN
      civ = civ + 1
      X(civ) = (i * 1.5 + COS(0.25 * i)) * (1.0 + SIN(0.125 * i)) + SQRT(i * 2.0) + EXP(0.001 * i)
    ENDIF
  ENDDO
END
",
    sub: "actfor",
    label: "do240",
    prepare: |n| {
        let machine = machine_of(CIV_CONDITIONAL.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64).set_int(sym("Q"), 0);
        frame.set_int(sym("civ"), 0);
        frame.alloc_real(sym("X"), n + 1);
        let c = frame.alloc_int(sym("C"), n);
        fill_int(&c, |i| (i % 3 == 0) as i64);
        (frame, machine)
    },
};

/// 8. A while loop driven by a CIV — CIV-COMP (track EXTEND_do400 /
///    FPTRAK_do300).
pub const CIV_WHILE: KernelShape = KernelShape {
    name: "civ_while",
    source: "
SUBROUTINE extend(X, N)
  DIMENSION X(*)
  INTEGER k, N
  k = 1
  DO do400 WHILE (k .LT. N)
    X(k) = X(k) + 2.0
    k = k + 2
  ENDDO
END
",
    sub: "extend",
    label: "do400",
    prepare: |n| {
        let machine = machine_of(CIV_WHILE.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64).set_int(sym("k"), 1);
        let x = frame.alloc_real(sym("X"), n + 2);
        fill_real(&x, |i| i as f64);
        (frame, machine)
    },
};

/// 9. Privatizable scratch array with static last value — PRIV+SLV
///    (flo52 PSMOO/DFLUX/EFLUX, arc2d STEPFX, apsi DVDTZ …).
pub const PRIVATE_SCRATCH: KernelShape = KernelShape {
    name: "private_scratch",
    source: "
SUBROUTINE psmoo(A, W, N, M)
  DIMENSION A(*), W(*)
  INTEGER i, j, N, M
  DO do40 i = 1, N
    DO j = 1, M
      W(j) = A(i) * 0.5 + j
    ENDDO
    DO j = 1, M
      A(i) = A(i) + W(j) * 0.125
    ENDDO
  ENDDO
END
",
    sub: "psmoo",
    label: "do40",
    prepare: |n| {
        let machine = machine_of(PRIVATE_SCRATCH.source);
        let mut frame = Store::new();
        let m = 8i64;
        frame.set_int(sym("N"), n as i64).set_int(sym("M"), m);
        let a = frame.alloc_real(sym("A"), n);
        fill_real(&a, |i| i as f64);
        frame.alloc_real(sym("W"), m as usize);
        (frame, machine)
    },
};

/// 10. A first-order recurrence — STATIC-SEQ (qcd UPDATE_do1/2, applu
///     BLTS/BUTS).
pub const SEQ_RECURRENCE: KernelShape = KernelShape {
    name: "seq_recurrence",
    source: "
SUBROUTINE blts(V, N)
  DIMENSION V(*)
  INTEGER i, N
  DO do1 i = 2, N
    V(i) = V(i - 1) * 0.5 + V(i)
  ENDDO
END
",
    sub: "blts",
    label: "do1",
    prepare: |n| {
        let machine = machine_of(SEQ_RECURRENCE.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        let v = frame.alloc_real(sym("V"), n + 1);
        fill_real(&v, |i| (i + 1) as f64);
        (frame, machine)
    },
};

/// 11. Input-dependent indirection where predicates fail but the whole
///     reference set is runtime-computable — HOIST-USR (apsi RUN_do20/30)
///     — paired with an affine prefix-sum partner, so the loop as a
///     whole is provably dependent and only *fission* can salvage it.
///
///     Cascade post-mortem for the indirect statement (the reason its
///     fail is legitimate, not an over-approximation bug): the O(N)
///     flow/output stage factorizes `W ∩ R` with `W = {A(P(i))}` and
///     `R = {A(Q(i))}` under `Subtract`, and the factorizer's subtract
///     rule keeps only the interval-hull alternative — the
///     monotonicity alternative (P and Q each injective and mutually
///     disjoint) is not expressible as a hull comparison, so the stage
///     degenerates to "hulls of P and Q don't overlap", which is false
///     for arbitrary prepared inputs whose hulls interleave. Runtime
///     rescue: the hoisted exact USR evaluation computes the actual
///     dependence set (empty on these inputs). The fission pass splits
///     the scan off into a sequential residue and rescues the indirect
///     fragment through that same exact test.
pub const HOIST_INDIRECT: KernelShape = KernelShape {
    name: "hoist_indirect",
    source: "
SUBROUTINE run20(A, P, Q, S, C, N)
  DIMENSION A(*), S(*), C(*)
  INTEGER P(*), Q(*)
  INTEGER i, N
  DO do20 i = 1, N
    A(P(i)) = A(Q(i)) + 1.0
    S(i + 1) = S(i) + C(i)
  ENDDO
END
",
    sub: "run20",
    label: "do20",
    prepare: |n| {
        let machine = machine_of(HOIST_INDIRECT.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        frame.alloc_real(sym("A"), 2 * n + 1);
        let p = frame.alloc_int(sym("P"), n);
        let q = frame.alloc_int(sym("Q"), n);
        fill_int(&p, |i| i as i64 + 1);
        fill_int(&q, |i| (i + n) as i64 + 1); // disjoint from P
        frame.alloc_real(sym("S"), n + 1);
        let c = frame.alloc_real(sym("C"), n);
        fill_real(&c, |i| (i % 7) as f64);
        (frame, machine)
    },
};

/// 12. Data-dependent scalar feedback no predicate can disambiguate —
///     TLS (track NLFILT_do300, spec77 GWATER_do190).
pub const TLS_FEEDBACK: KernelShape = KernelShape {
    name: "tls_feedback",
    source: "
SUBROUTINE nlfilt(A, W, N)
  DIMENSION A(*), W(*)
  INTEGER i, N, pos
  DO do300 i = 1, N
    pos = INT(W(i))
    A(pos) = A(pos + 1) * 0.5 + 1.0
  ENDDO
END
",
    sub: "nlfilt",
    label: "do300",
    prepare: |n| {
        let machine = machine_of(TLS_FEEDBACK.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        frame.alloc_real(sym("A"), n + 2);
        let w = frame.alloc_real(sym("W"), n);
        fill_real(&w, |i| (i + 1) as f64); // injective at runtime
        (frame, machine)
    },
};

/// 13. Extended reduction — EXT-RRED (dyfesm MXMULT_do10 / FORMR_do20).
pub const EXT_REDUCTION: KernelShape = KernelShape {
    name: "ext_reduction",
    source: "
SUBROUTINE mxmult(A, B, N)
  DIMENSION A(*)
  INTEGER B(*)
  INTEGER i, N
  DO do10 i = 1, N
    A(i) = i * 2.0
    A(B(i)) = A(B(i)) + 1.0
  ENDDO
END
",
    sub: "mxmult",
    label: "do10",
    prepare: |n| {
        let machine = machine_of(EXT_REDUCTION.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        frame.alloc_real(sym("A"), 2 * n);
        let b = frame.alloc_int(sym("B"), n);
        fill_int(&b, |i| (i + n) as i64 + 1); // beyond the WF region
        (frame, machine)
    },
};

/// 14. Statically recognized whole-array sum — SRED (mdg POTENG,
///     matrix300 pieces, gamess DIRFCK).
pub const STATIC_REDUCTION: KernelShape = KernelShape {
    name: "static_reduction",
    source: "
SUBROUTINE poteng(A, E, N)
  DIMENSION A(*), E(8)
  INTEGER i, j, N
  DO do2000 i = 1, N
    DO j = 1, 4
      E(j) = E(j) + A(i) * 0.5
    ENDDO
  ENDDO
END
",
    sub: "poteng",
    label: "do2000",
    prepare: |n| {
        let machine = machine_of(STATIC_REDUCTION.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        frame.alloc_real(sym("E"), 8);
        let a = frame.alloc_real(sym("A"), n);
        fill_real(&a, |i| i as f64);
        (frame, machine)
    },
};

/// 16. Integer histogram reduction through a colliding index array —
///     the buffered-merge path over `i64` values beyond 2^53, where
///     any `f64` round-trip in the merge phase loses bits (the
///     regression class the typed flat-slice kernels exist for).
pub const INT_HISTOGRAM: KernelShape = KernelShape {
    name: "int_histogram",
    source: "
SUBROUTINE histo(H, J, W, N)
  INTEGER H(64)
  INTEGER J(*), W(*)
  INTEGER i, N
  DO do300 i = 1, N
    H(J(i)) = H(J(i)) + W(i)
  ENDDO
END
",
    sub: "histo",
    label: "do300",
    prepare: |n| {
        let machine = machine_of(INT_HISTOGRAM.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        let h = frame.alloc_int(sym("H"), 64);
        fill_int(&h, |k| (1 << 62) + k as i64);
        let j = frame.alloc_int(sym("J"), n);
        fill_int(&j, |i| (i % 64) as i64 + 1); // heavy collisions
        let w = frame.alloc_int(sym("W"), n);
        fill_int(&w, |i| (1 << 53) + i as i64 + 1); // not f64-exact
        (frame, machine)
    },
};

/// 15. A tiny-granularity parallel loop (the flo52/ocean slowdown
///     effect: parallel but not worth spawning at small N).
pub const TINY_LOOP: KernelShape = KernelShape {
    name: "tiny_loop",
    source: "
SUBROUTINE dflux(A, N)
  DIMENSION A(*)
  INTEGER i, N
  DO do40 i = 1, N
    A(i) = A(i) + 1.0
  ENDDO
END
",
    sub: "dflux",
    label: "do40",
    prepare: |n| {
        let machine = machine_of(TINY_LOOP.source);
        let mut frame = Store::new();
        frame.set_int(sym("N"), n as i64);
        frame.alloc_real(sym("A"), n.max(1));
        (frame, machine)
    },
};

/// All kernel shapes (for exhaustive tests).
pub fn all_shapes() -> Vec<&'static KernelShape> {
    vec![
        &STENCIL,
        &SOLVH,
        &OFFSET_CROSSOVER,
        &MONOTONE_WINDOWS,
        &INDEX_REDUCTION,
        &GATED_BRANCHES,
        &CIV_CONDITIONAL,
        &CIV_WHILE,
        &PRIVATE_SCRATCH,
        &SEQ_RECURRENCE,
        &HOIST_INDIRECT,
        &TLS_FEEDBACK,
        &EXT_REDUCTION,
        &STATIC_REDUCTION,
        &INT_HISTOGRAM,
        &TINY_LOOP,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernel_sources_parse_and_prepare() {
        for shape in all_shapes() {
            let p = shape.prepared(16);
            let prog = p.machine.program();
            let sub = prog
                .subroutine(sym(p.sub))
                .unwrap_or_else(|| panic!("{}: subroutine {}", shape.name, p.sub));
            assert!(
                sub.find_loop(p.label).is_some(),
                "{}: loop {} not found",
                shape.name,
                p.label
            );
        }
    }

    #[test]
    fn all_kernels_run_sequentially() {
        for shape in all_shapes() {
            let mut p = shape.prepared(16);
            let prog = p.machine.program().clone();
            let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
            let target = sub.find_loop(p.label).expect("loop").clone();
            let mut state = lip_ir::ExecState::default();
            p.machine
                .exec_stmt(&sub, &mut p.frame, &target, &mut state)
                .unwrap_or_else(|e| panic!("{} failed: {e}", shape.name));
            assert!(state.cost > 0, "{}", shape.name);
        }
    }
}
