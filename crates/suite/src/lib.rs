//! The 26-benchmark evaluation substrate (PERFECT-CLUB, SPEC89/92,
//! SPEC2000/2006) for the `lip` loop parallelizer.
//!
//! Per DESIGN.md, each benchmark of the paper's Tables 1–3 is
//! represented by mini-Fortran kernels reproducing the loop shapes its
//! table row reports (same access patterns, same disambiguation
//! technique, same test complexity), plus a workload generator. The
//! [`run`] module measures them over the deterministic cost-model
//! simulator and the whole-benchmark Amdahl model used by the figure
//! harnesses.

pub mod bench_def;
pub mod kernels;
pub mod run;

pub use bench_def::{all_benchmarks, BenchDef, LoopDef, SuiteKind, PERFECT_CLUB, SPEC2006, SPEC92};
pub use kernels::{
    all_shapes, KernelShape, Prepared, CIV_CONDITIONAL, CIV_WHILE, EXT_REDUCTION, GATED_BRANCHES,
    HOIST_INDIRECT, INDEX_REDUCTION, INT_HISTOGRAM, MONOTONE_WINDOWS, OFFSET_CROSSOVER,
    PRIVATE_SCRATCH, SEQ_RECURRENCE, SOLVH, STATIC_REDUCTION, STENCIL, TINY_LOOP, TLS_FEEDBACK,
};
pub use run::{measure_benchmark, measure_loop, BenchTiming, LoopMeasurement};
