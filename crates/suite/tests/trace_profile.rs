//! The presentation layer over `lip_obs`, end to end on real kernels:
//! the Chrome Trace Event export must be valid JSON with one lane per
//! pool worker on a parallel kernel, the profile must fold the span
//! tree into sane self/total figures, and a fissioned loop's explain
//! report must carry per-fragment sub-decisions.

use std::collections::BTreeSet;

use lip_obs::json::Json;
use lip_obs::ObsLevel;
use lip_runtime::{Backend, LoopJob, PredBackend, Session};
use lip_symbolic::sym;

fn traced_session(nthreads: usize) -> Session {
    Session::builder()
        .backend(Backend::Bytecode)
        .pred(PredBackend::Compiled)
        .fission(true)
        .nthreads(nthreads)
        .par_min(64)
        .observer(ObsLevel::Trace)
        .build()
}

/// Runs one suite kernel through `session` and returns its run.
fn run_kernel(session: &Session, shape: &'static lip_suite::KernelShape, n: usize) {
    let mut p = shape.prepared(n);
    let prog = p.machine.program().clone();
    let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
    let target = sub.find_loop(p.label).expect("loop").clone();
    let analysis = session.analyze(&prog, sub.name, p.label).expect("analysis");
    session
        .run_many([LoopJob {
            machine: &p.machine,
            sub: &sub,
            target: &target,
            analysis: &analysis,
            frame: &mut p.frame,
        }])
        .expect("runs");
}

#[test]
fn chrome_export_is_valid_json_with_worker_lanes_on_a_parallel_kernel() {
    let session = traced_session(4);
    run_kernel(&session, &lip_suite::STENCIL, 1024);
    let json = session.trace_chrome_json();
    let doc = Json::parse(&json).expect("export is well-formed JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut tids = BTreeSet::new();
    let mut worker_lanes = BTreeSet::new();
    let mut phases = BTreeSet::new();
    for e in events {
        // Required Trace Event Format keys on every record.
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        phases.insert(ph.to_owned());
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        tids.insert(tid);
        if tid >= lip_obs::WORKER_LANE_BASE {
            worker_lanes.insert(tid);
        }
        if ph != "M" {
            e.get("ts").expect("ts on non-metadata events");
        }
    }
    assert!(
        tids.len() >= 2,
        "a parallel kernel must render ≥2 lanes, got {tids:?}"
    );
    assert!(
        worker_lanes.len() >= 2,
        "≥2 pool-worker lanes expected, got {worker_lanes:?}"
    );
    assert!(phases.contains("B") && phases.contains("E") && phases.contains("M"));

    // Per-chunk spans populate the worker lanes, with lane names.
    assert!(json.contains("\"pool.chunk\""));
    assert!(json.contains("\"worker 0\""));
    assert!(json.contains("\"worker 1\""));
}

#[test]
fn worker_lanes_are_stable_across_repeated_forks() {
    let session = traced_session(2);
    run_kernel(&session, &lip_suite::STENCIL, 512);
    run_kernel(&session, &lip_suite::STENCIL, 512);
    let lanes: BTreeSet<u64> = session
        .trace_events()
        .iter()
        .filter(|e| e.tid >= lip_obs::WORKER_LANE_BASE)
        .map(|e| e.tid)
        .collect();
    // Fresh OS threads per fork, but the same worker-index lanes.
    assert_eq!(
        lanes,
        BTreeSet::from([lip_obs::WORKER_LANE_BASE, lip_obs::WORKER_LANE_BASE + 1])
    );
}

#[test]
fn profile_folds_spans_with_consistent_self_and_total_times() {
    let session = traced_session(4);
    run_kernel(&session, &lip_suite::STENCIL, 1024);
    let p = session.profile();
    assert!(p.lanes >= 2);
    assert!(p.wall_ns > 0);
    let chunk = p
        .flat
        .iter()
        .find(|e| e.name == "pool.chunk")
        .expect("chunk spans profiled");
    assert!(chunk.count >= 2, "one span per executed chunk");
    for e in &p.flat {
        assert!(e.self_ns <= e.total_ns, "{}: self > total", e.name);
        assert!(e.count > 0);
    }
    let text = p.render_text();
    assert!(text.contains("hot phases"));
    assert!(text.contains("pool.chunk"));
    let json = Json::parse(&p.to_json()).expect("profile JSON parses");
    assert_eq!(
        json.get("flat").unwrap().as_arr().unwrap().len(),
        p.flat.len()
    );
}

#[test]
fn fissioned_explain_carries_per_fragment_sub_decisions() {
    let session = traced_session(2);
    run_kernel(&session, &lip_suite::HOIST_INDIRECT, 512);
    let d = session
        .explain_decision("do20")
        .expect("decision for the fissioned loop");
    let fission = d.fission.as_ref().expect("fission report");
    assert_eq!(fission.fragments.len(), 2);

    // The rescued fragment re-ran the cascade: its sub-decision must
    // carry the stages tried and the exact-test verdict that finally
    // admitted it to the parallel path.
    let rescued = fission
        .fragments
        .iter()
        .find(|f| f.parallel)
        .expect("one parallel fragment");
    assert!(
        !rescued.stages.is_empty() || rescued.exact_test.is_some(),
        "parallel fragment must expose how it was decided"
    );
    let seq = fission
        .fragments
        .iter()
        .find(|f| !f.parallel)
        .expect("one sequential fragment");
    assert!(seq.units > 0);

    // Rendered views expose the sub-decisions and per-fragment share.
    let text = d.render_text();
    assert!(text.contains("of loop)"), "per-fragment share rendered");
    let json = Json::parse(&d.to_json()).expect("decision JSON parses");
    let per_fragment = json
        .path(&["fission", "per_fragment"])
        .and_then(Json::as_arr)
        .expect("per_fragment array");
    assert_eq!(per_fragment.len(), 2);
    for f in per_fragment {
        f.get("stages").and_then(Json::as_arr).expect("stages key");
        f.get("share").and_then(Json::as_f64).expect("share key");
        f.get("exact_test").expect("exact_test key");
    }
    let rescued_json = per_fragment
        .iter()
        .find(|f| f.get("parallel").and_then(Json::as_bool) == Some(true))
        .expect("parallel fragment in JSON");
    let decided = !rescued_json
        .get("stages")
        .and_then(Json::as_arr)
        .unwrap()
        .is_empty()
        || rescued_json.get("exact_test") != Some(&Json::Null);
    assert!(decided);
}
