//! Int-reduction differential suite: integer array and scalar
//! reductions — sums with addends beyond 2^53, MIN/MAX over values
//! within 2^53 of `i64::MAX`, products, wrapping overflow — must come
//! out bit-identical to the sequential tree-walk interpreter across
//! every executor configuration: (backend × predicate engine × opt
//! level × fission), multi-threaded. This is the corpus that would
//! have caught the `f64` merge round-trip (integer sums silently lost
//! low bits whenever the buffered-merge path ran).
//!
//! A legality pin rides along: a non-commutative self-update
//! (`H(B(i)) = c - H(B(i))`, the value depends on how many updates ran
//! before) is NOT a reduction, must not classify as one, and must
//! still execute bit-identically everywhere.

use lip_ir::{parse_program, ExecState, Machine, Store, Value};
use lip_runtime::{Backend, OptLevel, PredBackend, Session};
use lip_symbolic::{sym, Sym};

/// Every executor configuration the session can run a loop under.
fn all_sessions() -> Vec<(String, Session)> {
    let mut out = Vec::new();
    for backend in [Backend::TreeWalk, Backend::Bytecode] {
        for pred in [PredBackend::Tree, PredBackend::Compiled] {
            for opt in [OptLevel::None, OptLevel::Fuse] {
                for fission in [false, true] {
                    let name = format!("{backend:?}/{pred:?}/{opt:?}/fission={fission}");
                    let sess = Session::builder()
                        .backend(backend)
                        .pred(pred)
                        .opt_level(opt)
                        .nthreads(4)
                        .par_min(1)
                        .fission(fission)
                        .build();
                    out.push((name, sess));
                }
            }
        }
    }
    out
}

/// Deep-copies a store (`Store::clone` shares array buffers).
fn deep_clone(frame: &Store) -> Store {
    let mut out = Store::new();
    for (s, v) in frame.scalars() {
        out.set_scalar(s, v);
    }
    for (s, view) in frame.arrays() {
        let buf = match view.buf.ty() {
            lip_ir::Ty::Int => lip_ir::ArrayBuf::new_int(view.buf.len()),
            _ => lip_ir::ArrayBuf::new_real(view.buf.len()),
        };
        buf.restore(&view.buf.snapshot());
        out.bind_array(
            s,
            lip_ir::ArrayView {
                buf,
                offset: view.offset,
                extents: view.extents.clone(),
            },
        );
    }
    out
}

fn value_bits(v: Value) -> (u8, u64) {
    match v {
        Value::Int(i) => (0, i as u64),
        Value::Real(r) => (1, r.to_bits()),
    }
}

/// Observable output: every pre-existing scalar and array, bit-exact.
fn snapshot(frame: &Store, scalars: &[Sym], arrays: &[Sym]) -> Vec<(Sym, Vec<(u8, u64)>)> {
    let mut out = Vec::new();
    for &s in scalars {
        out.push((s, vec![value_bits(frame.scalar(s).expect("scalar"))]));
    }
    for &s in arrays {
        let a = frame.array(s).expect("array");
        out.push((
            s,
            (0..a.buf.len()).map(|k| value_bits(a.buf.get(k))).collect(),
        ));
    }
    out
}

/// Runs `label` under every session configuration and asserts each
/// output is bit-identical to the sequential interpreter's.
fn assert_matches_sequential_everywhere(name: &str, machine: &Machine, frame: &Store, label: &str) {
    let prog = machine.program().clone();
    let sub = prog
        .units
        .iter()
        .find(|u| u.find_loop(label).is_some())
        .expect("loop owner")
        .clone();
    let target = sub.find_loop(label).expect("loop").clone();
    let scalars: Vec<Sym> = frame.scalars().map(|(s, _)| s).collect();
    let arrays: Vec<Sym> = frame.arrays().map(|(s, _)| s).collect();

    let mut seq = deep_clone(frame);
    machine
        .exec_block(
            &sub,
            &mut seq,
            std::slice::from_ref(&target),
            &mut ExecState::default(),
        )
        .expect("sequential reference");
    let expected = snapshot(&seq, &scalars, &arrays);

    for (cfg, sess) in all_sessions() {
        let analysis = sess.analyze(&prog, sub.name, label).expect("analysis");
        let mut par = deep_clone(frame);
        let stats = sess
            .run_loop(machine, &sub, &target, &analysis, &mut par)
            .expect("runs");
        let got = snapshot(&par, &scalars, &arrays);
        for ((s, e), (_, g)) in expected.iter().zip(got.iter()) {
            assert_eq!(
                e, g,
                "{name}: {s} diverged from sequential under {cfg} (outcome {:?})",
                stats.outcome
            );
        }
    }
}

fn custom(src: &str, prep: impl FnOnce(&mut Store)) -> (Machine, Store) {
    let machine = Machine::new(parse_program(src).expect("parses"));
    let mut frame = Store::new();
    prep(&mut frame);
    (machine, frame)
}

#[test]
fn int_histogram_kernel_bit_identical_across_matrix() {
    let p = lip_suite::INT_HISTOGRAM.prepared(256);
    assert_matches_sequential_everywhere("int_histogram", &p.machine, &p.frame, p.label);
}

#[test]
fn int_sum_beyond_2_pow_53_bit_identical_across_matrix() {
    let (machine, frame) = custom(
        "
SUBROUTINE t(H, B, N)
  INTEGER H(32)
  INTEGER B(*)
  INTEGER i, N
  DO l1 i = 1, N
    H(B(i)) = H(B(i)) + 9007199254740993
  ENDDO
END
",
        |f| {
            f.set_int(sym("N"), 300);
            let h = f.alloc_int(sym("H"), 32);
            for k in 0..32 {
                h.set(k, Value::Int((1 << 61) + k as i64));
            }
            let b = f.alloc_int(sym("B"), 300);
            for i in 0..300 {
                b.set(i, Value::Int((i % 8 + 1) as i64));
            }
        },
    );
    assert_matches_sequential_everywhere("int_sum", &machine, &frame, "l1");
}

#[test]
fn int_min_max_near_i64_extremes_bit_identical_across_matrix() {
    for intr in ["MIN", "MAX"] {
        let src = format!(
            "
SUBROUTINE t(H, B, C, N)
  INTEGER H(16)
  INTEGER B(*), C(*)
  INTEGER i, N
  DO l1 i = 1, N
    H(B(i)) = {intr}(H(B(i)), C(i))
  ENDDO
END
"
        );
        let seed = if intr == "MIN" { i64::MAX } else { i64::MIN };
        let (machine, frame) = custom(&src, |f| {
            f.set_int(sym("N"), 200);
            let h = f.alloc_int(sym("H"), 16);
            for k in 0..16 {
                h.set(k, Value::Int(seed));
            }
            let b = f.alloc_int(sym("B"), 200);
            let c = f.alloc_int(sym("C"), 200);
            for i in 0..200 {
                b.set(i, Value::Int((i % 16 + 1) as i64));
                // Distinct values an f64 cannot tell apart.
                c.set(i, Value::Int(i64::MAX - 4096 * i as i64 - 3));
            }
        });
        assert_matches_sequential_everywhere(&format!("int_{intr}"), &machine, &frame, "l1");
    }
}

#[test]
fn int_product_and_wrapping_sum_bit_identical_across_matrix() {
    // Wrapping i64 arithmetic is associative mod 2^64, so even
    // overflowing reductions merge bit-identically.
    let (machine, frame) = custom(
        "
SUBROUTINE t(H, G, B, N)
  INTEGER H(8), G(8)
  INTEGER B(*)
  INTEGER i, N
  DO l1 i = 1, N
    H(B(i)) = H(B(i)) * 3
    G(B(i)) = G(B(i)) + 4611686018427387907
  ENDDO
END
",
        |f| {
            f.set_int(sym("N"), 160);
            let h = f.alloc_int(sym("H"), 8);
            let g = f.alloc_int(sym("G"), 8);
            for k in 0..8 {
                h.set(k, Value::Int(2 * k as i64 + 1));
                g.set(k, Value::Int(i64::MAX - k as i64));
            }
            let b = f.alloc_int(sym("B"), 160);
            for i in 0..160 {
                b.set(i, Value::Int((i % 8 + 1) as i64));
            }
        },
    );
    assert_matches_sequential_everywhere("int_mul_wrap", &machine, &frame, "l1");
}

#[test]
fn int_scalar_reduction_bit_identical_across_matrix() {
    let (machine, frame) = custom(
        "
SUBROUTINE t(A, N, s)
  INTEGER A(*)
  INTEGER i, N, s
  DO l1 i = 1, N
    s = s + A(i)
  ENDDO
END
",
        |f| {
            f.set_int(sym("N"), 500);
            f.set_int(sym("s"), (1 << 62) + 11);
            let a = f.alloc_int(sym("A"), 500);
            for i in 0..500 {
                a.set(i, Value::Int((1 << 53) + i as i64 + 1));
            }
        },
    );
    assert_matches_sequential_everywhere("int_scalar_sum", &machine, &frame, "l1");
}

/// The legality pin: `H(B(i)) = c - H(B(i))` is NOT a reduction (the
/// final value of a cell depends on the parity of how many updates hit
/// it — non-commutative, non-associative as a self-update), so the
/// analysis must not classify it as one, and every configuration must
/// still match sequential execution exactly.
#[test]
fn non_commutative_self_update_is_not_a_reduction() {
    let (machine, frame) = custom(
        "
SUBROUTINE t(H, B, N)
  INTEGER H(8)
  INTEGER B(*)
  INTEGER i, N
  DO l1 i = 1, N
    H(B(i)) = 9007199254740993 - H(B(i))
  ENDDO
END
",
        |f| {
            f.set_int(sym("N"), 100);
            let h = f.alloc_int(sym("H"), 8);
            for k in 0..8 {
                h.set(k, Value::Int((1 << 60) + k as i64));
            }
            let b = f.alloc_int(sym("B"), 100);
            for i in 0..100 {
                b.set(i, Value::Int((i % 8 + 1) as i64)); // collisions
            }
        },
    );
    let prog = machine.program().clone();
    let analysis = Session::builder()
        .build()
        .analyze(&prog, prog.units[0].name, "l1")
        .expect("analysis");
    assert!(
        !matches!(
            analysis.arrays.get(&sym("H")),
            Some(lip_analysis::ArrayPlan::Reduction { .. })
        ),
        "non-commutative self-update classified as reduction: {:?}",
        analysis.arrays.get(&sym("H"))
    );
    assert_matches_sequential_everywhere("non_commutative", &machine, &frame, "l1");
}
