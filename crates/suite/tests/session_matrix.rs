//! Sessions across the full `(Backend, PredBackend, OptLevel,
//! fission)` matrix, in one process: every combination must produce
//! bit-identical measurements (the PR 3 acceptance check, now
//! exercised through `Session` instead of env-var CI legs) — including
//! when the sessions run concurrently from separate threads, which the
//! old process-global configuration could not even express. The
//! opt-level axis pins the superinstruction peephole pass: fused and
//! unfused bytecode must measure identically (only wall-clock may
//! differ). The fission axis pins the loop-distribution rescue pass:
//! on kernels whose whole-loop verdict already decides execution, the
//! knob must be observationally inert (fissioned-vs-sequential
//! equivalence on rescued kernels lives in `fission_differential.rs`).

//! The observer axis rides the same invariant: `LIP_OBS`/`observer()`
//! may count and record whatever it likes, but outputs, work units and
//! traced access streams must stay bit-identical to the off leg.

use std::sync::{Arc, Mutex};

use lip_obs::ObsLevel;
use lip_runtime::{Backend, LoopJob, OptLevel, PredBackend, Session};
use lip_suite::{measure_loop, KernelShape, LoopMeasurement};
use lip_symbolic::{sym, Sym};

/// The sixteen seam combinations (`2 backends × 2 predicate engines ×
/// 2 opt levels × fission on/off`; the opt level must be inert on the
/// tree-walk legs, and fission on every kernel below).
fn matrix() -> Vec<(Backend, PredBackend, OptLevel, bool)> {
    let mut m = Vec::new();
    for backend in [Backend::TreeWalk, Backend::Bytecode] {
        for pred in [PredBackend::Tree, PredBackend::Compiled] {
            for opt in [OptLevel::None, OptLevel::Fuse] {
                for fission in [true, false] {
                    m.push((backend, pred, opt, fission));
                }
            }
        }
    }
    m
}

fn session(backend: Backend, pred: PredBackend, opt: OptLevel, fission: bool) -> Session {
    Session::builder()
        .backend(backend)
        .pred(pred)
        .opt_level(opt)
        .fission(fission)
        .nthreads(2)
        .par_min(64) // small threshold so the parallel predicate path runs
        .build()
}

/// The kernels the differential sweep measures: a static-parallel
/// stencil, O(1)/O(N) predicated loops, an interprocedural kernel, an
/// index reduction and a CIV compaction.
fn kernels() -> Vec<(&'static KernelShape, usize)> {
    vec![
        (&lip_suite::STENCIL, 96),
        (&lip_suite::OFFSET_CROSSOVER, 96),
        (&lip_suite::MONOTONE_WINDOWS, 48),
        (&lip_suite::SOLVH, 24),
        (&lip_suite::INDEX_REDUCTION, 64),
        (&lip_suite::CIV_CONDITIONAL, 64),
    ]
}

/// The observable table row of one measurement (everything Tables 1–3
/// derive from).
fn row(m: &LoopMeasurement) -> (String, String, bool, bool, Vec<u64>, u64) {
    (
        format!("{}_{} {:?}", m.shape, m.label, m.class),
        m.techniques.clone(),
        m.parallel,
        m.baseline_parallel,
        m.per_iter.clone(),
        m.test_units,
    )
}

fn measure_all(session: &Session) -> Vec<(String, String, bool, bool, Vec<u64>, u64)> {
    kernels()
        .into_iter()
        .map(|(shape, n)| row(&measure_loop(session, shape, n, 0.3, "-")))
        .collect()
}

#[test]
fn all_backend_combinations_measure_identically_in_one_process() {
    let reference = measure_all(&session(
        Backend::TreeWalk,
        PredBackend::Tree,
        OptLevel::None,
        true,
    ));
    for (backend, pred, opt, fission) in matrix() {
        let got = measure_all(&session(backend, pred, opt, fission));
        assert_eq!(
            reference, got,
            "tables diverged under ({backend}, {pred}, {opt}, fission={fission})"
        );
    }
}

/// The fast seams with an observer installed at `level`.
fn obs_session(level: ObsLevel, nthreads: usize) -> Session {
    Session::builder()
        .backend(Backend::Bytecode)
        .pred(PredBackend::Compiled)
        .opt_level(OptLevel::Fuse)
        .fission(true)
        .nthreads(nthreads)
        .par_min(64)
        .observer(level)
        .build()
}

#[test]
fn observer_legs_measure_identically() {
    let off = measure_all(&obs_session(ObsLevel::Off, 2));
    for level in [ObsLevel::Metrics, ObsLevel::Trace] {
        let sess = obs_session(level, 2);
        let got = measure_all(&sess);
        assert_eq!(off, got, "tables diverged under observer level {level}");
        // The observer must actually have observed — identical tables
        // with empty metrics would mean the level is silently off.
        let counted = sess.metrics().counter("pred.evals").unwrap_or(0);
        assert!(counted > 0, "no predicate evaluations counted at {level}");
    }
}

/// Records every traced access, in order.
#[derive(Default)]
struct AccessLog {
    events: Mutex<Vec<(char, Sym, usize)>>,
}

impl lip_ir::AccessTracer for AccessLog {
    fn read(&self, arr: Sym, idx: usize) {
        self.events.lock().unwrap().push(('r', arr, idx));
    }
    fn write(&self, arr: Sym, idx: usize) {
        self.events.lock().unwrap().push(('w', arr, idx));
    }
}

#[test]
fn observer_execution_is_bit_identical_including_access_streams() {
    // Actually *execute* a predicated loop and a fission-rescued loop
    // under each observer level with an access tracer installed:
    // outcome, work units, final array state and the exact traced
    // access stream must match the off leg. Single-threaded so the
    // stream order is deterministic.
    for (shape, n) in [
        (&lip_suite::OFFSET_CROSSOVER, 128usize),
        (&lip_suite::HOIST_INDIRECT, 64),
    ] {
        let run = |level: ObsLevel| {
            let sess = obs_session(level, 1);
            let mut p = shape.prepared(n);
            let prog = p.machine.program().clone();
            let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
            let target = sub.find_loop(p.label).expect("loop").clone();
            let analysis = sess.analyze(&prog, sub.name, p.label).expect("analysis");
            let log = Arc::new(AccessLog::default());
            let traced = p.machine.with_tracer(log.clone());
            let stats = sess
                .run_many([LoopJob {
                    machine: &traced,
                    sub: &sub,
                    target: &target,
                    analysis: &analysis,
                    frame: &mut p.frame,
                }])
                .expect("runs")
                .pop()
                .expect("one result");
            let a = p.frame.array(sym("A")).expect("A");
            let snapshot: Vec<u64> = (0..a.buf.len()).map(|i| a.get_f64(i).to_bits()).collect();
            let events = log.events.lock().unwrap().clone();
            (
                format!("{:?}", stats.outcome),
                stats.test_units,
                stats.loop_units,
                snapshot,
                events,
            )
        };
        let reference = run(ObsLevel::Off);
        for level in [ObsLevel::Metrics, ObsLevel::Trace] {
            assert_eq!(
                reference,
                run(level),
                "{}: execution diverged under observer level {level}",
                shape.name
            );
        }
    }
}

#[test]
fn concurrent_sessions_with_different_seams_are_bit_identical() {
    // Baseline: each combination measured alone, sequentially.
    let baseline: Vec<_> = matrix()
        .into_iter()
        .map(|(b, p, o, f)| measure_all(&session(b, p, o, f)))
        .collect();

    // All sixteen sessions measuring the same kernels at the same time
    // from separate threads — two callers in one process with
    // different backends, the scenario env-var seams made impossible.
    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = matrix()
            .into_iter()
            .map(|(b, p, o, f)| scope.spawn(move || measure_all(&session(b, p, o, f))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("measurement thread panicked"))
            .collect()
    });

    for (k, (base, conc)) in baseline.iter().zip(concurrent.iter()).enumerate() {
        assert_eq!(base, conc, "combination {k} diverged under concurrency");
    }
}

#[test]
fn concurrent_executions_produce_identical_frames() {
    // Beyond the tables: actually *execute* a predicated loop through
    // run_loop from concurrent sessions and compare the final array
    // state element for element against a single-session run.
    let shape = &lip_suite::OFFSET_CROSSOVER;
    let n = 256usize;
    let run = |backend: Backend, pred: PredBackend, opt: OptLevel, fission: bool| {
        let sess = session(backend, pred, opt, fission);
        let mut p = shape.prepared(n);
        let prog = p.machine.program().clone();
        let sub = prog.subroutine(sym(p.sub)).expect("sub").clone();
        let target = sub.find_loop(p.label).expect("loop").clone();
        let analysis = sess.analyze(&prog, sub.name, p.label).expect("analysis");
        let stats = sess
            .run_many([LoopJob {
                machine: &p.machine,
                sub: &sub,
                target: &target,
                analysis: &analysis,
                frame: &mut p.frame,
            }])
            .expect("runs")
            .pop()
            .expect("one result");
        let a = p.frame.array(sym("A")).expect("A");
        let snapshot: Vec<f64> = (0..a.buf.len()).map(|i| a.get_f64(i)).collect();
        (stats.outcome, stats.test_units, stats.loop_units, snapshot)
    };

    let reference = run(Backend::TreeWalk, PredBackend::Tree, OptLevel::None, true);
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = matrix()
            .into_iter()
            .map(|(b, p, o, f)| scope.spawn(move || run(b, p, o, f)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for (k, got) in results.iter().enumerate() {
        assert_eq!(&reference, got, "combination {k} diverged");
    }
}
