//! Fission differential suite: with the loop-fission rescue pass on
//! and off, every suite kernel and a seeded random-loop corpus must
//! produce bit-identical outputs — declared arrays element for
//! element, every scalar, the exact work-unit count — plus matching
//! traced access streams. Fission re-orders *statements* (all
//! iterations of fragment 0 run before fragment 1), so the streams
//! are compared per array as multisets of `(kind, index)` events; a
//! missing or duplicated access is visible, only legal re-ordering is
//! not. Must-not-fission shapes (cross-fragment scalar dependences,
//! use-before-def) pin the legality analysis: they must come out with
//! no plan at all.
//!
//! Sessions run single-threaded so both legs' traces are
//! deterministic; the parallel executor still runs its full
//! privatization/reduction machinery on one chunk.

use std::sync::{Arc, Mutex};

use lip_ir::{parse_program, AccessTracer, Machine, Store, Value};
use lip_runtime::{Backend, LoopJob, PredBackend, Session};
use lip_suite::KernelShape;
use lip_symbolic::{sym, Sym};

/// Records every traced access.
#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<(char, Sym, usize)>>,
}

impl AccessTracer for Recorder {
    fn read(&self, arr: Sym, idx: usize) {
        self.events.lock().unwrap().push(('r', arr, idx));
    }
    fn write(&self, arr: Sym, idx: usize) {
        self.events.lock().unwrap().push(('w', arr, idx));
    }
}

fn session(fission: bool) -> Session {
    Session::builder()
        .backend(Backend::Bytecode)
        .pred(PredBackend::Compiled)
        .nthreads(1)
        .par_min(16)
        .fission(fission)
        .build()
}

/// Lossless value snapshot: Int/Real confusion and NaN payloads stay
/// visible.
fn value_bits(v: Value) -> (u8, u64) {
    match v {
        Value::Int(i) => (0, i as u64),
        Value::Real(r) => (1, r.to_bits()),
    }
}

/// One leg's observable outcome. Arrays and scalars are keyed by name
/// and restricted to what existed *before* the run: execution may
/// allocate internal trace arrays under fresh names (and the fission
/// leg labels its fragments differently), which are not outputs.
struct Leg {
    outcome: String,
    loop_units: u64,
    scalars: Vec<(Sym, (u8, u64))>,
    arrays: Vec<(Sym, Vec<(u8, u64)>)>,
    /// Per-array sorted multiset of traced `(kind, index)` events.
    accesses: Vec<(Sym, Vec<(char, usize)>)>,
}

/// `Store::clone` shares the `Arc<ArrayBuf>` backing stores, so one
/// leg's run would leak into the other's inputs — copy the buffers.
fn deep_clone(frame: &Store) -> Store {
    let mut out = Store::new();
    for (s, v) in frame.scalars() {
        out.set_scalar(s, v);
    }
    for (s, view) in frame.arrays() {
        let buf = match view.buf.ty() {
            lip_ir::Ty::Int => lip_ir::ArrayBuf::new_int(view.buf.len()),
            _ => lip_ir::ArrayBuf::new_real(view.buf.len()),
        };
        buf.restore(&view.buf.snapshot());
        out.bind_array(
            s,
            lip_ir::ArrayView {
                buf,
                offset: view.offset,
                extents: view.extents.clone(),
            },
        );
    }
    out
}

fn run_leg(machine: &Machine, frame: &Store, sub_name: &str, label: &str, fission: bool) -> Leg {
    let sess = session(fission);
    let prog = machine.program().clone();
    let sub = prog.subroutine(sym(sub_name)).expect("sub").clone();
    let target = sub.find_loop(label).expect("loop").clone();
    let analysis = sess.analyze(&prog, sub.name, label).expect("analysis");

    let declared: Vec<Sym> = frame.arrays().map(|(s, _)| s).collect();
    let scalar_names: Vec<Sym> = frame.scalars().map(|(s, _)| s).collect();
    let rec = Arc::new(Recorder::default());
    let traced = machine.with_tracer(rec.clone());
    let mut frame = deep_clone(frame);
    let stats = sess
        .run_many([LoopJob {
            machine: &traced,
            sub: &sub,
            target: &target,
            analysis: &analysis,
            frame: &mut frame,
        }])
        .expect("runs")
        .pop()
        .expect("one result");

    let scalars = scalar_names
        .into_iter()
        .map(|s| (s, value_bits(frame.scalar(s).expect("scalar survives"))))
        .collect();
    let arrays = declared
        .iter()
        .map(|&s| {
            let a = frame.array(s).expect("array survives");
            (
                s,
                (0..a.buf.len()).map(|k| value_bits(a.buf.get(k))).collect(),
            )
        })
        .collect();
    let events = std::mem::take(&mut *rec.events.lock().unwrap());
    let accesses = declared
        .iter()
        .map(|&s| {
            let mut evs: Vec<(char, usize)> = events
                .iter()
                .filter(|(_, arr, _)| *arr == s)
                .map(|&(k, _, i)| (k, i))
                .collect();
            evs.sort_unstable();
            (s, evs)
        })
        .collect();
    Leg {
        outcome: format!("{:?}", stats.outcome),
        loop_units: stats.loop_units,
        scalars,
        arrays,
        accesses,
    }
}

/// Asserts both legs agree on everything observable.
fn assert_legs_match(name: &str, on: &Leg, off: &Leg) {
    assert_eq!(
        on.loop_units, off.loop_units,
        "{name}: work units diverged (fission on: {}, off: {}; outcomes {} vs {})",
        on.loop_units, off.loop_units, on.outcome, off.outcome
    );
    assert_eq!(on.scalars, off.scalars, "{name}: scalars diverged");
    for ((s, a), (_, b)) in on.arrays.iter().zip(off.arrays.iter()) {
        assert_eq!(
            a, b,
            "{name}: array {s} diverged ({} vs {})",
            on.outcome, off.outcome
        );
    }
    for ((s, a), (_, b)) in on.accesses.iter().zip(off.accesses.iter()) {
        assert_eq!(
            a, b,
            "{name}: traced accesses on {s} diverged ({} vs {})",
            on.outcome, off.outcome
        );
    }
}

fn check_kernel(shape: &KernelShape, n: usize) {
    let p = shape.prepared(n);
    let on = run_leg(&p.machine, &p.frame, p.sub, p.label, true);
    let off = run_leg(&p.machine, &p.frame, p.sub, p.label, false);
    assert_legs_match(shape.name, &on, &off);
}

#[test]
fn all_suite_kernels_bit_identical_with_and_without_fission() {
    for shape in lip_suite::all_shapes() {
        check_kernel(shape, 32);
    }
}

#[test]
fn hoist_indirect_is_rescued_by_fission() {
    let shape = &lip_suite::HOIST_INDIRECT;
    let p = shape.prepared(64);
    let on = run_leg(&p.machine, &p.frame, p.sub, p.label, true);
    let off = run_leg(&p.machine, &p.frame, p.sub, p.label, false);
    assert!(
        on.outcome.starts_with("Fissioned"),
        "fission leg should distribute, got {}",
        on.outcome
    );
    assert_eq!(off.outcome, "Sequential", "classic leg stays sequential");
    assert_legs_match(shape.name, &on, &off);
}

// ---------------------------------------------------------------------
// Hand-written legality pins.
// ---------------------------------------------------------------------

fn custom(src: &str, prep: impl FnOnce(&mut Store)) -> (Machine, Store) {
    let machine = Machine::new(parse_program(src).expect("parses"));
    let mut frame = Store::new();
    prep(&mut frame);
    (machine, frame)
}

fn analyze_with_fission(machine: &Machine, label: &str) -> lip_analysis::LoopAnalysis {
    let prog = machine.program().clone();
    let sub = prog.units[0].clone();
    session(true)
        .analyze(&prog, sub.name, label)
        .expect("analysis")
}

#[test]
fn map_plus_scan_gets_a_two_fragment_plan() {
    let (machine, frame) = custom(
        "
SUBROUTINE gen(A, B, C, S, N)
  DIMENSION A(*), B(*), C(*), S(*)
  INTEGER i, N
  DO gl i = 1, N
    A(i) = B(i) + 1.0
    S(i + 1) = S(i) + C(i)
  ENDDO
END
",
        |f| {
            f.set_int(sym("N"), 48);
            f.alloc_real(sym("A"), 50);
            f.alloc_real(sym("B"), 50);
            f.alloc_real(sym("C"), 50);
            f.alloc_real(sym("S"), 50);
        },
    );
    let analysis = analyze_with_fission(&machine, "gl");
    let plan = analysis
        .fission
        .as_deref()
        .expect("map+scan must get a plan");
    assert_eq!(
        plan.fragments.len(),
        2,
        "one parallel map, one sequential scan"
    );
    assert_eq!(plan.rescuable(), 1, "exactly the map fragment is rescuable");

    let on = run_leg(&machine, &frame, "gen", "gl", true);
    let off = run_leg(&machine, &frame, "gen", "gl", false);
    assert!(
        on.outcome.starts_with("Fissioned"),
        "fission leg should distribute, got {}",
        on.outcome
    );
    assert_legs_match("map_plus_scan", &on, &off);
}

#[test]
fn cross_fragment_scalar_anti_dependence_must_not_fission() {
    // `A(i) = T` reads the value `T = B(i)` wrote in the *previous*
    // iteration: splitting the statements apart would feed every
    // iteration the same initial T.
    let (machine, frame) = custom(
        "
SUBROUTINE gen(A, B, T, N)
  DIMENSION A(*), B(*)
  INTEGER i, N
  DO gl i = 1, N
    A(i) = T
    T = B(i)
  ENDDO
END
",
        |f| {
            f.set_int(sym("N"), 32);
            f.set_scalar(sym("T"), Value::Real(0.5));
            f.alloc_real(sym("A"), 34);
            f.alloc_real(sym("B"), 34);
        },
    );
    let analysis = analyze_with_fission(&machine, "gl");
    assert!(
        analysis.fission.is_none(),
        "scalar anti-dependence must merge the statements: {:?}",
        analysis.class
    );
    let on = run_leg(&machine, &frame, "gen", "gl", true);
    let off = run_leg(&machine, &frame, "gen", "gl", false);
    assert_legs_match("scalar_anti_dep", &on, &off);
}

#[test]
fn use_before_def_recurrence_must_not_fission() {
    // T is used before it is (re)defined each iteration, so the scan
    // through T chains every statement together.
    let (machine, frame) = custom(
        "
SUBROUTINE gen(A, C, T, N)
  DIMENSION A(*), C(*)
  INTEGER i, N
  DO gl i = 1, N
    A(i) = T + 1.0
    T = T + C(i)
  ENDDO
END
",
        |f| {
            f.set_int(sym("N"), 32);
            f.set_scalar(sym("T"), Value::Real(0.0));
            f.alloc_real(sym("A"), 34);
            f.alloc_real(sym("C"), 34);
        },
    );
    let analysis = analyze_with_fission(&machine, "gl");
    assert!(
        analysis.fission.is_none(),
        "use-before-def must merge the statements: {:?}",
        analysis.class
    );
    let on = run_leg(&machine, &frame, "gen", "gl", true);
    let off = run_leg(&machine, &frame, "gen", "gl", false);
    assert_legs_match("use_before_def", &on, &off);
}

// ---------------------------------------------------------------------
// Seeded random-loop corpus (proptest-style deterministic splitmix
// stream, replayable from the failing seed).
// ---------------------------------------------------------------------

struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Statement templates mixing fissionable shapes (independent maps, a
/// scan, scalar and Int-array reductions) with shapes that force
/// merging (scalar temp chains, arrays both read and written across
/// statements). The `H` reductions update through the indirection
/// array `P` with addends beyond 2^53 over cells seeded near 2^61, so
/// any `f64` round-trip in the buffered-merge path diverges from the
/// classic leg immediately.
const TEMPLATES: &[&str] = &[
    "A(i) = B(i) * 2.0 + C(i)",
    "A(i + 1) = C(i) - B(i)",
    "B(i) = B(i) + 0.5",
    "S(i + 1) = S(i) + C(i)",
    "T = C(i) + 1.0",
    "A(i) = A(i) + T",
    "K = K + P(i)",
    "C(i) = B(i) * 0.25",
    "H(P(i) + 1) = H(P(i) + 1) + 9007199254740993",
    "H(P(i) + 1) = MIN(H(P(i) + 1), 9007199254740993 * P(i))",
    "H(P(i) + 1) = MAX(H(P(i) + 1), 4611686018427387904 + P(i))",
    "K = K + 9007199254740993",
];

fn gen_source(seed: u64) -> String {
    let mut g = Gen::new(seed);
    let len = 2 + g.below(3) as usize;
    let body: String = (0..len)
        .map(|_| {
            format!(
                "    {}\n",
                TEMPLATES[g.below(TEMPLATES.len() as u64) as usize]
            )
        })
        .collect();
    format!(
        "
SUBROUTINE gen(A, B, C, S, P, H, T, K, N)
  DIMENSION A(*), B(*), C(*), S(*)
  INTEGER P(*), H(*)
  INTEGER i, N, K
  DO gl i = 1, N
{body}  ENDDO
END
"
    )
}

fn corpus_frame(n: usize) -> impl FnOnce(&mut Store) {
    move |f: &mut Store| {
        f.set_int(sym("N"), n as i64);
        f.set_int(sym("K"), 0);
        f.set_scalar(sym("T"), Value::Real(1.5));
        let fill = |buf: &Arc<lip_ir::ArrayBuf>, scale: f64| {
            for k in 0..buf.len() {
                buf.set(k, Value::Real((k % 7) as f64 * scale));
            }
        };
        fill(&f.alloc_real(sym("A"), n + 2), 0.5);
        fill(&f.alloc_real(sym("B"), n + 2), 1.25);
        fill(&f.alloc_real(sym("C"), n + 2), 0.75);
        fill(&f.alloc_real(sym("S"), n + 2), 0.25);
        let p = f.alloc_int(sym("P"), n + 2);
        for k in 0..p.len() {
            p.set(k, Value::Int((k % 5) as i64));
        }
        // Int reduction target: seeded near 2^61 so an f64 round-trip
        // anywhere in the merge path visibly loses low bits.
        let h = f.alloc_int(sym("H"), n + 2);
        for k in 0..h.len() {
            h.set(k, Value::Int((1i64 << 61) + k as i64));
        }
    }
}

#[test]
fn random_loop_corpus_bit_identical_with_and_without_fission() {
    let mut fissioned = 0usize;
    for seed in 0..192u64 {
        let src = gen_source(seed);
        let (machine, frame) = custom(&src, corpus_frame(24));
        let on = run_leg(&machine, &frame, "gen", "gl", true);
        let off = run_leg(&machine, &frame, "gen", "gl", false);
        if on.outcome.starts_with("Fissioned") {
            fissioned += 1;
        }
        assert_legs_match(&format!("corpus seed {seed}\n{src}"), &on, &off);
    }
    // The corpus must actually exercise the rescue path, not just
    // degenerate shapes the planner rejects.
    assert!(
        fissioned >= 5,
        "only {fissioned} corpus programs were fissioned — generator drifted"
    );
}
