//! # lip — Logical Inference techniques for loop Parallelization
//!
//! A Rust reproduction of Oancea & Rauchwerger, *Logical Inference
//! Techniques for Loop Parallelization* (PLDI 2012): a hybrid
//! static/dynamic automatic loop parallelizer built on the USR set
//! language, a USR→PDAG predicate translation (`factor`), and a cascade of
//! increasingly expensive sufficient-independence runtime tests.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`symbolic`] — symbolic expressions, predicates, Fourier–Motzkin,
//! * [`lmad`] — linear memory access descriptors,
//! * [`usr`] — the USR set-expression language and summaries,
//! * [`core`] — PDAG predicates and the factorization algorithm,
//! * [`ir`] — the mini-Fortran frontend (parser, IR, interpreter),
//! * [`vm`] — the register bytecode compiler + dispatch-loop VM,
//! * [`pred`] — the compiled, parallel runtime predicate engine,
//! * [`analysis`] — summary construction and loop classification,
//! * [`runtime`] — parallel executor, runtime tests, cost-model simulator,
//! * [`obs`] — observability: metrics, decision tracing, `explain` reports,
//! * [`serve`] — analysis-as-a-service: a multi-threaded TCP server with
//!   warm session shards, admission control and incremental re-analysis,
//! * [`suite`] — the PERFECT-CLUB / SPEC benchmark kernels.
//!
//! The configured entry point to the whole pipeline is [`Session`]
//! (re-exported from [`runtime`]): a builder owning the execution
//! backend, the bytecode opt level (the `lip_vm` superinstruction
//! peephole pass, default on), the predicate engine, the pool width
//! and the per-machine compile caches, with `analyze` / `run_loop` /
//! `run_many` / `civ_traces` / `lrpd_execute` / `per_iteration_costs`
//! / `simulate` methods. Environment variables (`LIP_BACKEND`,
//! `LIP_OPT`, `LIP_PRED`, `LIP_PRED_PAR_MIN`, `LIP_FISSION`,
//! `LIP_OBS`) are read in exactly one place,
//! [`SessionConfig::from_env`], with strict parsing.
//!
//! Observability rides the same session: `.observer(ObsLevel::Trace)`
//! turns on metrics, span tracing and per-loop decision records, read
//! back through `Session::metrics()` and `Session::explain(label)`.
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through and
//! `examples/explain.rs` for the observability/explain report.

pub use lip_analysis as analysis;
pub use lip_core as core;
pub use lip_ir as ir;
pub use lip_lmad as lmad;
pub use lip_obs as obs;
pub use lip_pred as pred;
pub use lip_runtime as runtime;
pub use lip_serve as serve;
pub use lip_suite as suite;
pub use lip_symbolic as symbolic;
pub use lip_usr as usr;
pub use lip_vm as vm;

pub use lip_runtime::{ConfigError, LoopJob, Session, SessionBuilder, SessionConfig};
